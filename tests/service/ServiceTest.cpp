//===- tests/service/ServiceTest.cpp --------------------------*- C++ -*-===//
//
// The compilation service, bottom-up: wire protocol round-trips, frame
// transport over a socketpair, the two-tier artifact cache (LRU budgets,
// disk persistence, corrupt-file recovery, singleflight), the cache-key
// anti-vacuity sweep, and the end-to-end daemon over a real Unix socket
// (including a restart that must serve from the persistent tier).
//
//===----------------------------------------------------------------------===//

#include "service/ArtifactCache.h"
#include "service/Client.h"
#include "service/Protocol.h"
#include "service/Server.h"

#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace slp;

namespace {

const char *VectorizableKernel = R"(
  kernel saxpyish {
    scalar float s;
    array float A[64] readonly;
    array float B[64];
    loop i = 0 .. 64 { B[i] = A[i] * s + 1.0; }
  }
)";

const char *SecondKernel = R"(
  kernel shift {
    array float C[64];
    loop i = 0 .. 64 { C[i] = C[i] + 2.0; }
  }
)";

std::string canonicalText(const char *Source) {
  ParseResult P = parseKernel(Source);
  EXPECT_TRUE(P.succeeded()) << P.ErrorMessage;
  return printKernel(*P.TheKernel);
}

/// Fresh directory per test; removed on destruction.
struct TempDir {
  std::string Path;
  TempDir() {
    std::string Templ =
        (std::filesystem::temp_directory_path() / "slp-service-XXXXXX")
            .string();
    char *D = mkdtemp(Templ.data());
    EXPECT_NE(D, nullptr);
    Path = D ? D : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code Ec;
      std::filesystem::remove_all(Path, Ec);
    }
  }
};

ServiceOptions fastOptions() {
  ServiceOptions S;
  // Skip the execution stage: cache/protocol tests exercise plumbing, not
  // the simulator, and stay fast.
  S.Equivalence = false;
  S.VerifyVector = false;
  return S;
}

std::string compileOrDie(const std::string &Text, const ServiceOptions &S) {
  std::string Artifact, Err;
  EXPECT_TRUE(compileServiceArtifact(Text, S, Artifact, &Err)) << Err;
  return Artifact;
}

} // namespace

//===----------------------------------------------------------------------===//
// Protocol round-trips
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, OptionsCanonicalRoundTrip) {
  ServiceOptions S;
  S.Kind = OptimizerKind::Global;
  S.Machine = ServiceMachine::Amd;
  S.Bits = 256;
  S.GroupingEngine = GroupingImpl::Exact;
  S.ExactBudget = 12345;
  S.Exec = ExecEngineKind::Reference;
  S.VerifyVector = true;
  S.VerifyLint = true;
  S.VerifyWerror = true;
  S.Equivalence = false;

  std::string Err;
  std::optional<ServiceOptions> Back =
      parseServiceOptions(S.canonical(), &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->canonical(), S.canonical());
  EXPECT_EQ(Back->Kind, S.Kind);
  EXPECT_EQ(Back->Bits, S.Bits);
  EXPECT_EQ(Back->ExactBudget, S.ExactBudget);
  EXPECT_EQ(Back->Equivalence, S.Equivalence);
}

TEST(ServiceProtocol, OptionsCanonicalNamesPipelineVersion) {
  // The version line is what invalidates every artifact on a pipeline
  // change; it must lead the canonical block.
  std::string C = ServiceOptions().canonical();
  EXPECT_NE(C.find(ServicePipelineVersion), std::string::npos);
}

TEST(ServiceProtocol, OptionsParserRejectsGarbage) {
  std::string Err;
  EXPECT_FALSE(parseServiceOptions("not an option block", &Err).has_value());
  EXPECT_FALSE(parseServiceOptions("", &Err).has_value());
}

TEST(ServiceProtocol, ArtifactSerializationRoundTripsByteExactly) {
  ServiceOptions S; // defaults: equivalence + debug-default verifier
  S.VerifyVector = true;
  std::string Bytes = compileOrDie(canonicalText(VectorizableKernel), S);

  ServiceArtifact A;
  std::string Err;
  ASSERT_TRUE(parseArtifact(Bytes, A, &Err)) << Err;
  EXPECT_EQ(A.KernelName, "saxpyish");
  EXPECT_TRUE(A.Simulated);
  EXPECT_TRUE(A.Transformed);
  EXPECT_TRUE(A.EquivChecked);
  EXPECT_TRUE(A.EquivOk);
  EXPECT_TRUE(A.Verified);
  EXPECT_GT(A.Groups, 0u);
  EXPECT_GT(A.ScalarCycles, A.VectorCycles);
  EXPECT_NE(A.ProgramText.find("superword"), std::string::npos);

  // Re-serialization is the identity: hexfloat cycles and blob framing
  // lose nothing.
  EXPECT_EQ(serializeArtifact(A), Bytes);
}

TEST(ServiceProtocol, RequestAndReplyRoundTrip) {
  ServiceRequest R;
  R.Type = ServiceRequestType::Compile;
  R.Options.Kind = OptimizerKind::LarsenSlp;
  R.Kernels = {canonicalText(VectorizableKernel),
               canonicalText(SecondKernel)};

  ServiceRequest BackR;
  std::string Err;
  ASSERT_TRUE(parseRequest(serializeRequest(R), BackR, &Err)) << Err;
  EXPECT_EQ(BackR.Type, ServiceRequestType::Compile);
  EXPECT_EQ(BackR.Options.canonical(), R.Options.canonical());
  EXPECT_EQ(BackR.Kernels, R.Kernels);

  ServiceReply Reply;
  Reply.Ok = true;
  Reply.Results.resize(2);
  Reply.Results[0].Status = CacheStatus::MemoryHit;
  Reply.Results[0].Artifact = "artifact-bytes\nwith lines";
  Reply.Results[1].Status = CacheStatus::Miss;
  Reply.Results[1].Artifact = "";
  Reply.Counters.emplace_back("service.hits", 1);

  ServiceReply BackReply;
  ASSERT_TRUE(parseReply(serializeReply(Reply), BackReply, &Err)) << Err;
  EXPECT_TRUE(BackReply.Ok);
  ASSERT_EQ(BackReply.Results.size(), 2u);
  EXPECT_EQ(BackReply.Results[0].Status, CacheStatus::MemoryHit);
  EXPECT_EQ(BackReply.Results[0].Artifact, Reply.Results[0].Artifact);
  EXPECT_EQ(BackReply.counter("service.hits"), 1u);

  ServiceReply ErrorReply;
  ErrorReply.Ok = false;
  ErrorReply.Error = "kernel 3: line 2: parse error";
  ASSERT_TRUE(parseReply(serializeReply(ErrorReply), BackReply, &Err));
  EXPECT_FALSE(BackReply.Ok);
  EXPECT_EQ(BackReply.Error, ErrorReply.Error);
}

TEST(ServiceProtocol, FramingOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);

  // Payloads with NULs and an empty payload both survive framing. A
  // megabyte exceeds the socketpair buffer, so the writer runs on its own
  // thread (also proving sendAll/recvAll handle short transfers).
  std::string Big(1 << 20, 'x');
  Big[17] = '\0';
  for (const std::string &Payload : {std::string("hello"), std::string(),
                                     Big}) {
    std::string WriteErr, ReadErr, Back;
    bool Wrote = false;
    std::thread Writer(
        [&] { Wrote = writeFrame(Fds[0], Payload, &WriteErr); });
    bool Read = readFrame(Fds[1], Back, &ReadErr);
    Writer.join();
    ASSERT_TRUE(Wrote) << WriteErr;
    ASSERT_TRUE(Read) << ReadErr;
    EXPECT_EQ(Back, Payload);
  }

  // Clean EOF: peer closes, readFrame returns false with an empty error.
  ::close(Fds[0]);
  std::string Err = "sentinel", Back;
  EXPECT_FALSE(readFrame(Fds[1], Back, &Err));
  EXPECT_TRUE(Err.empty());
  ::close(Fds[1]);
}

TEST(ServiceProtocol, FramingRejectsBadMagic) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  const char Garbage[] = "GARBAGE-NOT-A-FRAME";
  ASSERT_GT(::send(Fds[0], Garbage, sizeof(Garbage), 0), 0);
  std::string Err, Back;
  EXPECT_FALSE(readFrame(Fds[1], Back, &Err));
  EXPECT_FALSE(Err.empty());
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Artifact cache
//===----------------------------------------------------------------------===//

TEST(ArtifactCache, MemoryHitAfterCompute) {
  ArtifactCache Cache(ArtifactCacheConfig{}); // memory only
  CacheStatus Status;
  std::string A =
      Cache.getOrCompute("key-1", [] { return std::string("art-1"); },
                         Status);
  EXPECT_EQ(A, "art-1");
  EXPECT_EQ(Status, CacheStatus::Miss);

  std::string B = Cache.getOrCompute(
      "key-1", [] { ADD_FAILURE() << "recompute"; return std::string(); },
      Status);
  EXPECT_EQ(B, "art-1");
  EXPECT_EQ(Status, CacheStatus::MemoryHit);
  EXPECT_EQ(Cache.counters().MemoryHits, 1u);
  EXPECT_EQ(Cache.counters().Misses, 1u);
}

TEST(ArtifactCache, EntryBudgetEvictsLeastRecentlyUsed) {
  ArtifactCacheConfig Config;
  Config.MaxMemoryEntries = 2;
  ArtifactCache Cache(Config);
  CacheStatus Status;
  Cache.getOrCompute("a", [] { return std::string("A"); }, Status);
  Cache.getOrCompute("b", [] { return std::string("B"); }, Status);
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  Cache.getOrCompute("a", [] { return std::string("X"); }, Status);
  EXPECT_EQ(Status, CacheStatus::MemoryHit);
  Cache.getOrCompute("c", [] { return std::string("C"); }, Status);

  EXPECT_FALSE(Cache.lookup("b", Status).has_value());
  EXPECT_EQ(Cache.lookup("a", Status).value_or(""), "A");
  EXPECT_EQ(Cache.lookup("c", Status).value_or(""), "C");
  EXPECT_EQ(Cache.counters().Evictions, 1u);
  EXPECT_EQ(Cache.counters().MemoryEntries, 2u);
}

TEST(ArtifactCache, ByteBudgetEvictsButAdmitsOversized) {
  ArtifactCacheConfig Config;
  Config.MaxMemoryBytes = 10;
  ArtifactCache Cache(Config);
  CacheStatus Status;
  Cache.getOrCompute("small", [] { return std::string("12345"); }, Status);
  // An artifact larger than the whole budget still caches (alone).
  Cache.getOrCompute("huge",
                     [] { return std::string(100, 'h'); }, Status);
  EXPECT_FALSE(Cache.lookup("small", Status).has_value());
  EXPECT_EQ(Cache.lookup("huge", Status).value_or("").size(), 100u);
  EXPECT_GE(Cache.counters().Evictions, 1u);
}

TEST(ArtifactCache, DiskTierSurvivesInstanceRestart) {
  TempDir Dir;
  ArtifactCacheConfig Config;
  Config.DiskDir = Dir.Path;
  CacheStatus Status;
  {
    ArtifactCache First(Config);
    First.getOrCompute("persist-key",
                       [] { return std::string("persisted artifact"); },
                       Status);
    EXPECT_EQ(Status, CacheStatus::Miss);
  }
  // A fresh instance — a daemon restart — serves from disk, then memory.
  ArtifactCache Second(Config);
  std::string A = Second.getOrCompute(
      "persist-key",
      [] { ADD_FAILURE() << "recompute after restart"; return std::string(); },
      Status);
  EXPECT_EQ(A, "persisted artifact");
  EXPECT_EQ(Status, CacheStatus::DiskHit);
  // The disk hit promoted into memory.
  Second.getOrCompute("persist-key", [] { return std::string(); }, Status);
  EXPECT_EQ(Status, CacheStatus::MemoryHit);
}

TEST(ArtifactCache, CorruptDiskFileRecomputes) {
  TempDir Dir;
  ArtifactCacheConfig Config;
  Config.DiskDir = Dir.Path;
  CacheStatus Status;
  {
    ArtifactCache First(Config);
    First.getOrCompute("victim", [] { return std::string("good"); }, Status);
  }
  // Truncate the stored file to garbage.
  std::string Path = ArtifactCache::diskPathFor(Dir.Path, "victim");
  ASSERT_TRUE(std::filesystem::exists(Path));
  std::ofstream(Path, std::ios::trunc) << "corrupt";

  ArtifactCache Second(Config);
  std::string A = Second.getOrCompute(
      "victim", [] { return std::string("recomputed"); }, Status);
  EXPECT_EQ(A, "recomputed");
  EXPECT_EQ(Status, CacheStatus::Miss);
  EXPECT_EQ(Second.counters().DiskLoadErrors, 1u);
  // The recompute republished a valid file.
  ArtifactCache Third(Config);
  EXPECT_EQ(Third.lookup("victim", Status).value_or(""), "recomputed");
}

TEST(ArtifactCache, HashCollisionOnDiskDetectedByMaterial) {
  // Two different materials that map to the same disk file (simulated by
  // writing A's file under B's path): the stored material mismatches and
  // the cache must recompute, not serve A's artifact for B.
  TempDir Dir;
  ArtifactCacheConfig Config;
  Config.DiskDir = Dir.Path;
  CacheStatus Status;
  {
    ArtifactCache First(Config);
    First.getOrCompute("material-A", [] { return std::string("art-A"); },
                       Status);
  }
  std::filesystem::copy_file(
      ArtifactCache::diskPathFor(Dir.Path, "material-A"),
      ArtifactCache::diskPathFor(Dir.Path, "material-B"));
  ArtifactCache Second(Config);
  std::string B = Second.getOrCompute(
      "material-B", [] { return std::string("art-B"); }, Status);
  EXPECT_EQ(B, "art-B");
  EXPECT_EQ(Status, CacheStatus::Miss);
  EXPECT_EQ(Second.counters().DiskLoadErrors, 1u);
}

TEST(ArtifactCache, ConcurrentRequestsCompileOnce) {
  // Satellite: N threads race getOrCompute on one key. Exactly one
  // compute may run; everyone gets bit-identical bytes.
  ArtifactCache Cache(ArtifactCacheConfig{});
  std::atomic<unsigned> Computes{0};
  constexpr unsigned N = 8;
  std::vector<std::string> Results(N);
  std::vector<CacheStatus> Statuses(N);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != N; ++I)
    Threads.emplace_back([&, I] {
      Results[I] = Cache.getOrCompute(
          "contended",
          [&] {
            ++Computes;
            // Widen the race window so waiters really coalesce.
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
            return std::string("the one artifact");
          },
          Statuses[I]);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Computes.load(), 1u);
  unsigned Misses = 0;
  for (unsigned I = 0; I != N; ++I) {
    EXPECT_EQ(Results[I], "the one artifact") << I;
    Misses += Statuses[I] == CacheStatus::Miss;
  }
  EXPECT_EQ(Misses, 1u);
  EXPECT_EQ(Cache.counters().Misses, 1u);
  EXPECT_EQ(Cache.counters().Coalesced + Cache.counters().MemoryHits,
            N - 1);
}

//===----------------------------------------------------------------------===//
// Cache-key correctness (anti-vacuity sweep)
//===----------------------------------------------------------------------===//

TEST(ServiceCacheKey, KernelTextIsPartOfTheKey) {
  ServiceOptions S = fastOptions();
  EXPECT_NE(artifactKeyMaterial(canonicalText(VectorizableKernel), S),
            artifactKeyMaterial(canonicalText(SecondKernel), S));
}

TEST(ServiceCacheKey, EveryOptionFieldChangesTheKey) {
  // Anti-vacuity: a field that can change the compile's behavior (or the
  // engine contract it runs under) must change the key — a sweep over
  // every ServiceOptions field guards against a refactor silently
  // dropping one from canonical().
  const std::string Text = canonicalText(VectorizableKernel);
  const ServiceOptions Base; // defaults
  const std::string BaseKey = artifactKeyMaterial(Text, Base);

  struct Variant {
    const char *Name;
    void (*Mutate)(ServiceOptions &);
  };
  const Variant Variants[] = {
      {"opt", [](ServiceOptions &S) { S.Kind = OptimizerKind::LarsenSlp; }},
      {"machine",
       [](ServiceOptions &S) { S.Machine = ServiceMachine::Amd; }},
      {"bits", [](ServiceOptions &S) { S.Bits = 256; }},
      {"grouping-impl",
       [](ServiceOptions &S) { S.GroupingEngine = GroupingImpl::Exact; }},
      {"exact-budget", [](ServiceOptions &S) { S.ExactBudget = 7; }},
      {"exec-engine",
       [](ServiceOptions &S) { S.Exec = ExecEngineKind::Reference; }},
      {"verify-vector",
       [](ServiceOptions &S) { S.VerifyVector = !S.VerifyVector; }},
      {"verify-lint", [](ServiceOptions &S) { S.VerifyLint = true; }},
      {"werror", [](ServiceOptions &S) { S.VerifyWerror = true; }},
      {"equivalence",
       [](ServiceOptions &S) { S.Equivalence = !S.Equivalence; }},
  };
  for (const Variant &V : Variants) {
    ServiceOptions Mutated = Base;
    V.Mutate(Mutated);
    EXPECT_NE(artifactKeyMaterial(Text, Mutated), BaseKey)
        << "field '" << V.Name << "' is missing from the cache key";
  }
}

TEST(ServiceCacheKey, OutputChangingFieldsChangeTheArtifactToo) {
  // The sweep above proves the key varies; this proves the variation is
  // not vacuous for fields that actually alter the artifact bytes.
  const std::string Text = canonicalText(VectorizableKernel);
  ServiceOptions Base = fastOptions();
  const std::string BaseArt = compileOrDie(Text, Base);

  { // Optimizer: scalar emits no vector program at all.
    ServiceOptions S = Base;
    S.Kind = OptimizerKind::Scalar;
    EXPECT_NE(compileOrDie(Text, S), BaseArt);
  }
  { // Machine model: different cost tables, different predicted cycles.
    ServiceOptions S = Base;
    S.Machine = ServiceMachine::Amd;
    EXPECT_NE(compileOrDie(Text, S), BaseArt);
  }
  { // Datapath width: 64-bit datapath fits no float4 superwords.
    ServiceOptions S = Base;
    S.Bits = 64;
    EXPECT_NE(compileOrDie(Text, S), BaseArt);
  }
  { // Static verifier: flips the Verified flag in the artifact.
    ServiceOptions S = Base;
    S.VerifyVector = true;
    EXPECT_NE(compileOrDie(Text, S), BaseArt);
  }
  { // Equivalence: flips EquivChecked/EquivOk.
    ServiceOptions S = Base;
    S.Equivalence = true;
    EXPECT_NE(compileOrDie(Text, S), BaseArt);
  }
}

TEST(ServiceCacheKey, EquivalentEnginesShareArtifactBytesButNotKeys) {
  // grouping-impl optimized/reference contract: identical groupings,
  // hence identical artifacts — yet they key separately (conservative).
  const std::string Text = canonicalText(VectorizableKernel);
  ServiceOptions Optimized = fastOptions();
  ServiceOptions Reference = fastOptions();
  Reference.GroupingEngine = GroupingImpl::Reference;
  EXPECT_EQ(compileOrDie(Text, Optimized), compileOrDie(Text, Reference));
  EXPECT_NE(artifactKeyMaterial(Text, Optimized),
            artifactKeyMaterial(Text, Reference));
}

//===----------------------------------------------------------------------===//
// End-to-end daemon
//===----------------------------------------------------------------------===//

namespace {

ServiceRequest compileRequest(std::vector<std::string> Kernels) {
  ServiceRequest R;
  R.Type = ServiceRequestType::Compile;
  R.Options = fastOptions();
  R.Kernels = std::move(Kernels);
  return R;
}

} // namespace

TEST(ServiceServer, EndToEndOverUnixSocket) {
  TempDir Dir;
  ServerConfig Config;
  Config.SocketPath = Dir.Path + "/sock";
  Config.Threads = 2;
  Config.Cache.DiskDir = Dir.Path + "/cache";
  ServiceServer Server(Config);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  const std::string TextA = canonicalText(VectorizableKernel);
  const std::string TextB = canonicalText(SecondKernel);

  auto Client = ServiceClient::connect(Config.SocketPath, &Err);
  ASSERT_TRUE(Client.has_value()) << Err;
  EXPECT_TRUE(Client->ping(&Err)) << Err;

  // Cold batch: both kernels compile.
  ServiceReply Reply;
  ASSERT_TRUE(Client->roundTrip(compileRequest({TextA, TextB}), Reply,
                                &Err))
      << Err;
  ASSERT_TRUE(Reply.Ok) << Reply.Error;
  ASSERT_EQ(Reply.Results.size(), 2u);
  EXPECT_EQ(Reply.counter("service.misses"), 2u);

  // Served artifacts are bit-identical to direct in-process compiles.
  EXPECT_EQ(Reply.Results[0].Artifact,
            compileOrDie(TextA, fastOptions()));
  EXPECT_EQ(Reply.Results[1].Artifact,
            compileOrDie(TextB, fastOptions()));

  // Warm batch over a new connection: all memory hits, same bytes.
  auto Client2 = ServiceClient::connect(Config.SocketPath, &Err);
  ASSERT_TRUE(Client2.has_value()) << Err;
  ServiceReply Warm;
  ASSERT_TRUE(Client2->roundTrip(compileRequest({TextA, TextB}), Warm,
                                 &Err))
      << Err;
  ASSERT_TRUE(Warm.Ok);
  EXPECT_EQ(Warm.counter("service.hits-memory"), 2u);
  EXPECT_EQ(Warm.Results[0].Artifact, Reply.Results[0].Artifact);
  EXPECT_EQ(Warm.Results[1].Artifact, Reply.Results[1].Artifact);

  // A whitespace/comment variant of the same kernel also hits: the server
  // keys on the canonical printing.
  ServiceReply Variant;
  ASSERT_TRUE(Client2->roundTrip(
      compileRequest({std::string("// reformatted\n") + VectorizableKernel}),
      Variant, &Err));
  ASSERT_TRUE(Variant.Ok);
  EXPECT_EQ(Variant.counter("service.hits"), 1u);

  Server.stop();
  EXPECT_FALSE(std::filesystem::exists(Config.SocketPath));
}

TEST(ServiceServer, RestartServesFromPersistentTier) {
  TempDir Dir;
  ServerConfig Config;
  Config.SocketPath = Dir.Path + "/sock";
  Config.Cache.DiskDir = Dir.Path + "/cache";
  const std::string TextA = canonicalText(VectorizableKernel);
  const std::string TextB = canonicalText(SecondKernel);
  std::string Err;

  {
    ServiceServer First(Config);
    ASSERT_TRUE(First.start(&Err)) << Err;
    auto Client = ServiceClient::connect(Config.SocketPath, &Err);
    ASSERT_TRUE(Client.has_value()) << Err;
    ServiceReply Reply;
    ASSERT_TRUE(Client->roundTrip(compileRequest({TextA, TextB}), Reply,
                                  &Err));
    ASSERT_TRUE(Reply.Ok);
    First.stop();
  }

  // The restarted daemon has a cold memory tier but a warm disk tier.
  ServiceServer Second(Config);
  ASSERT_TRUE(Second.start(&Err)) << Err;
  auto Client = ServiceClient::connect(Config.SocketPath, &Err);
  ASSERT_TRUE(Client.has_value()) << Err;
  ServiceReply Reply;
  ASSERT_TRUE(Client->roundTrip(compileRequest({TextA, TextB}), Reply,
                                &Err));
  ASSERT_TRUE(Reply.Ok);
  EXPECT_EQ(Reply.counter("service.hits-disk"), 2u);
  EXPECT_EQ(Reply.counter("service.misses"), 0u);
  EXPECT_EQ(Reply.Results[0].Artifact, compileOrDie(TextA, fastOptions()));
  Second.stop();
}

TEST(ServiceServer, MalformedKernelFailsTheRequest) {
  TempDir Dir;
  ServerConfig Config;
  Config.SocketPath = Dir.Path + "/sock";
  ServiceServer Server(Config);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  auto Client = ServiceClient::connect(Config.SocketPath, &Err);
  ASSERT_TRUE(Client.has_value()) << Err;
  ServiceReply Reply;
  ASSERT_TRUE(Client->roundTrip(
      compileRequest({"kernel broken { scalar float a; a = ; }"}), Reply,
      &Err));
  EXPECT_FALSE(Reply.Ok);
  EXPECT_FALSE(Reply.Error.empty());
  Server.stop();
}

TEST(ServiceServer, PrecheckRejectsOutOfBoundsKernel) {
  // The daemon statically verifies every kernel before spending any
  // compile time on it: a provably out-of-bounds reference fails the
  // request with the verifier's SK diagnostics, unconditionally (the
  // precheck is not a ServiceOption and never enters the cache key).
  const char *OutOfBounds = R"(
    kernel oob {
      array float A[32];
      loop i = 0 .. 64 { A[i] = A[i] + 1.0; }
    }
  )";
  ServerConfig Config;
  Config.SocketPath = "/unused-but-required";
  ServiceServer Server(Config); // handle() needs no socket

  ServiceReply Reply = Server.handle(compileRequest({OutOfBounds}));
  EXPECT_FALSE(Reply.Ok);
  EXPECT_NE(Reply.Error.find("rejected by kernel verifier"),
            std::string::npos)
      << Reply.Error;
  EXPECT_NE(Reply.Error.find("SK"), std::string::npos) << Reply.Error;
  EXPECT_EQ(Reply.counter("server.precheck-rejects"), 1u);
  EXPECT_EQ(Server.counters().PrecheckRejects, 1u);
  // Nothing was compiled or cached for the rejected kernel.
  EXPECT_EQ(Reply.counter("cache.misses"), 0u);

  // A safe kernel still compiles, and the reject tally is cumulative.
  ServiceReply Good =
      Server.handle(compileRequest({canonicalText(SecondKernel)}));
  EXPECT_TRUE(Good.Ok);
  EXPECT_EQ(Good.counter("server.precheck-rejects"), 1u);
}

TEST(ServiceServer, ShutdownRequestEndsWait) {
  TempDir Dir;
  ServerConfig Config;
  Config.SocketPath = Dir.Path + "/sock";
  ServiceServer Server(Config);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  std::thread Stopper([&] {
    auto Client = ServiceClient::connect(Config.SocketPath, &Err);
    ASSERT_TRUE(Client.has_value()) << Err;
    std::string E2;
    EXPECT_TRUE(Client->shutdownServer(&E2)) << E2;
  });
  Server.wait(); // returns once the shutdown request lands
  Stopper.join();
  Server.stop();
}

TEST(ServiceServer, HandleDispatchesWithoutASocket) {
  ServerConfig Config;
  Config.SocketPath = "/unused-but-required";
  ServiceServer Server(Config); // never started
  ServiceRequest Ping;
  Ping.Type = ServiceRequestType::Ping;
  ServiceReply Reply = Server.handle(Ping);
  EXPECT_TRUE(Reply.Ok);
  EXPECT_EQ(Reply.counter("server.requests"), 1u);

  ServiceReply Compile =
      Server.handle(compileRequest({canonicalText(SecondKernel)}));
  ASSERT_TRUE(Compile.Ok);
  EXPECT_EQ(Compile.counter("service.misses"), 1u);
  ServiceReply Again =
      Server.handle(compileRequest({canonicalText(SecondKernel)}));
  EXPECT_EQ(Again.counter("service.hits-memory"), 1u);
}
