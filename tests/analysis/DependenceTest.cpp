//===- tests/analysis/DependenceTest.cpp ----------------------*- C++ -*-===//

#include "analysis/Dependence.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

bool hasDep(const DependenceInfo &D, unsigned Src, unsigned Dst,
            DepKind Kind) {
  for (const Dep &E : D.dependences())
    if (E.Src == Src && E.Dst == Dst && E.Kind == Kind)
      return true;
  return false;
}

} // namespace

TEST(Dependence, ScalarFlow) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = a + 2.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Flow));
  EXPECT_TRUE(D.depends(0, 1));
  EXPECT_FALSE(D.independent(0, 1));
}

TEST(Dependence, ScalarAnti) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      b = a + 2.0;
      a = 1.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Anti));
  EXPECT_FALSE(hasDep(D, 0, 1, DepKind::Flow));
}

TEST(Dependence, ScalarOutput) {
  Kernel K = parse(R"(
    kernel k { scalar float a;
      a = 1.0;
      a = 2.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Output));
}

TEST(Dependence, IndependentStatements) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = 2.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
  EXPECT_TRUE(D.dependences().empty());
}

TEST(Dependence, ArraySameSubscriptAliases) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 16 {
        A[2*i] = 1.0;
        A[2*i] = A[2*i] + 1.0;
      }
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Flow));
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Output));
}

TEST(Dependence, ConstantOffsetNeverAliasesInOneIteration) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 15 {
        A[2*i] = 1.0;
        A[2*i + 1] = 2.0;
      }
    })");
  DependenceInfo D(K);
  // Within one iteration 2i != 2i+1; loop-carried relations are not
  // block-level dependences.
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, GcdTestExcludesDifferentParity) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 8 { loop j = 0 .. 3 {
        A[2*i] = 1.0;
        A[2*j + 1] = 2.0;
      } }
    })");
  // 2i vs 2j+1: difference 2i-2j-1 is odd, never zero.
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, DifferentIndicesMayAlias) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 8 { loop j = 0 .. 8 {
        A[i] = 1.0;
        A[j] = 2.0;
      } }
    })");
  // i == j happens for some iterations.
  DependenceInfo D(K);
  EXPECT_FALSE(D.independent(0, 1));
}

TEST(Dependence, BoundsTestExcludesDisjointRanges) {
  Kernel K = parse(R"(
    kernel k { array float A[128];
      loop i = 0 .. 8 { loop j = 0 .. 8 {
        A[i] = 1.0;
        A[j + 64] = 2.0;
      } }
    })");
  // i in [0,7], j+64 in [64,71]: never equal.
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, DifferentArraysNeverAlias) {
  Kernel K = parse(R"(
    kernel k { array float A[16]; array float B[16];
      loop i = 0 .. 16 {
        A[i] = 1.0;
        B[i] = A[i] * 2.0;
      }
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Flow)); // through A[i]
  EXPECT_FALSE(hasDep(D, 0, 1, DepKind::Output));
}

TEST(Dependence, MultiDimFlattening) {
  Kernel K = parse(R"(
    kernel k { array float A[8][8];
      loop i = 0 .. 7 {
        A[i][7] = 1.0;
        A[i + 1][0] = 2.0;
      }
    })");
  // Flattened: 8i+7 vs 8i+8: constant difference 1, no alias.
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, MayAliasStaticHelper) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  Operand S1 = Operand::makeScalar(0);
  Operand C = Operand::makeConstant(1.0);
  EXPECT_TRUE(DependenceInfo::mayAlias(K, S1, S1));
  EXPECT_FALSE(DependenceInfo::mayAlias(K, S1, C));
  Operand A1 = Operand::makeArray(0, {AffineExpr::term(0, 1)});
  Operand A2 = Operand::makeArray(0, {AffineExpr::term(0, 1, 3)});
  EXPECT_TRUE(DependenceInfo::mayAlias(K, A1, A1));
  EXPECT_FALSE(DependenceInfo::mayAlias(K, A1, A2));
  EXPECT_FALSE(DependenceInfo::mayAlias(K, S1, A1));
}

TEST(Dependence, ChainAcrossThreeStatements) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = 1.0;
      b = a * 2.0;
      c = b * 3.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(D.depends(0, 1));
  EXPECT_TRUE(D.depends(1, 2));
  // No direct dependence 0 -> 2 (c uses only b).
  EXPECT_FALSE(D.depends(0, 2));
}

TEST(Dependence, AffineMayBeZeroBasics) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr(int64_t{0})));
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr(int64_t{5})));
  // i - 3 hits zero at i = 3; i + 9 stays positive over i in [0, 8).
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, 1, -3)));
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr::term(0, 1, 9)));
  // GCD test: 2i - 3 is always odd.
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr::term(0, 2, -3)));
  // Bounds test with a large but non-overflowing stride: 2^59 * i + 2^59
  // is at least 2^59 over the iteration space (7 * 2^59 still fits).
  EXPECT_FALSE(affineMayBeZero(
      K, AffineExpr::term(0, int64_t{1} << 59, int64_t{1} << 59)));
}

TEST(Dependence, AffineMayBeZeroOverflowIsConservative) {
  // Strides near INT64_MAX overflow the Banerjee bounds fold; the checked
  // arithmetic must degrade to "may be zero" instead of wrapping (which
  // could prove independence that does not hold).
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  // The GCD filter still separates this pair precisely (no overflow in
  // the magnitude path): INT64_MAX never divides 1.
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr::term(0, INT64_MAX, -1)));
  // INT64_MIN cannot be negated for the GCD, and INT64_MIN * 7 overflows
  // the bounds fold: conservative acceptance.
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, INT64_MIN, 1)));
  // INT64_MAX * i + INT64_MAX is never zero for i in [0, 8), but the fold
  // endpoint INT64_MAX * 7 overflows: conservative acceptance, not UB.
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, INT64_MAX, INT64_MAX)));
  // Negating the INT64_MIN constant for the target overflows too.
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, 1, INT64_MIN)));
}

TEST(Dependence, MayAliasNearInt64Strides) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  // Pathological subscripts (hand-built, not expressible in the surface
  // language): the difference INT64_MAX - 2 stays representable, but the
  // Banerjee fold over the iteration space overflows, so the answer must
  // degrade to may-alias instead of wrapping.
  Operand Huge1 = Operand::makeArray(0, {AffineExpr::term(0, INT64_MAX)});
  Operand Huge2 = Operand::makeArray(0, {AffineExpr::term(0, 2)});
  EXPECT_TRUE(DependenceInfo::mayAlias(K, Huge1, Huge1));
  EXPECT_TRUE(DependenceInfo::mayAlias(K, Huge1, Huge2));
  // And a provably disjoint near-limit pair still separates cleanly.
  Operand Far1 = Operand::makeArray(0, {AffineExpr::term(0, 1, 0)});
  Operand Far2 =
      Operand::makeArray(0, {AffineExpr::term(0, 1, int64_t{1} << 61)});
  EXPECT_FALSE(DependenceInfo::mayAlias(K, Far1, Far2));
}
