//===- tests/analysis/DependenceTest.cpp ----------------------*- C++ -*-===//

#include "analysis/Dependence.h"

#include "ir/Parser.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <functional>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

bool hasDep(const DependenceInfo &D, unsigned Src, unsigned Dst,
            DepKind Kind) {
  for (const Dep &E : D.dependences())
    if (E.Src == Src && E.Dst == Dst && E.Kind == Kind)
      return true;
  return false;
}

} // namespace

TEST(Dependence, ScalarFlow) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = a + 2.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Flow));
  EXPECT_TRUE(D.depends(0, 1));
  EXPECT_FALSE(D.independent(0, 1));
}

TEST(Dependence, ScalarAnti) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      b = a + 2.0;
      a = 1.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Anti));
  EXPECT_FALSE(hasDep(D, 0, 1, DepKind::Flow));
}

TEST(Dependence, ScalarOutput) {
  Kernel K = parse(R"(
    kernel k { scalar float a;
      a = 1.0;
      a = 2.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Output));
}

TEST(Dependence, IndependentStatements) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = 2.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
  EXPECT_TRUE(D.dependences().empty());
}

TEST(Dependence, ArraySameSubscriptAliases) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 16 {
        A[2*i] = 1.0;
        A[2*i] = A[2*i] + 1.0;
      }
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Flow));
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Output));
}

TEST(Dependence, ConstantOffsetNeverAliasesInOneIteration) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 15 {
        A[2*i] = 1.0;
        A[2*i + 1] = 2.0;
      }
    })");
  DependenceInfo D(K);
  // Within one iteration 2i != 2i+1; loop-carried relations are not
  // block-level dependences.
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, GcdTestExcludesDifferentParity) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 8 { loop j = 0 .. 3 {
        A[2*i] = 1.0;
        A[2*j + 1] = 2.0;
      } }
    })");
  // 2i vs 2j+1: difference 2i-2j-1 is odd, never zero.
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, DifferentIndicesMayAlias) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 8 { loop j = 0 .. 8 {
        A[i] = 1.0;
        A[j] = 2.0;
      } }
    })");
  // i == j happens for some iterations.
  DependenceInfo D(K);
  EXPECT_FALSE(D.independent(0, 1));
}

TEST(Dependence, BoundsTestExcludesDisjointRanges) {
  Kernel K = parse(R"(
    kernel k { array float A[128];
      loop i = 0 .. 8 { loop j = 0 .. 8 {
        A[i] = 1.0;
        A[j + 64] = 2.0;
      } }
    })");
  // i in [0,7], j+64 in [64,71]: never equal.
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, DifferentArraysNeverAlias) {
  Kernel K = parse(R"(
    kernel k { array float A[16]; array float B[16];
      loop i = 0 .. 16 {
        A[i] = 1.0;
        B[i] = A[i] * 2.0;
      }
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Flow)); // through A[i]
  EXPECT_FALSE(hasDep(D, 0, 1, DepKind::Output));
}

TEST(Dependence, MultiDimFlattening) {
  Kernel K = parse(R"(
    kernel k { array float A[8][8];
      loop i = 0 .. 7 {
        A[i][7] = 1.0;
        A[i + 1][0] = 2.0;
      }
    })");
  // Flattened: 8i+7 vs 8i+8: constant difference 1, no alias.
  DependenceInfo D(K);
  EXPECT_TRUE(D.independent(0, 1));
}

TEST(Dependence, MayAliasStaticHelper) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  Operand S1 = Operand::makeScalar(0);
  Operand C = Operand::makeConstant(1.0);
  EXPECT_TRUE(DependenceInfo::mayAlias(K, S1, S1));
  EXPECT_FALSE(DependenceInfo::mayAlias(K, S1, C));
  Operand A1 = Operand::makeArray(0, {AffineExpr::term(0, 1)});
  Operand A2 = Operand::makeArray(0, {AffineExpr::term(0, 1, 3)});
  EXPECT_TRUE(DependenceInfo::mayAlias(K, A1, A1));
  EXPECT_FALSE(DependenceInfo::mayAlias(K, A1, A2));
  EXPECT_FALSE(DependenceInfo::mayAlias(K, S1, A1));
}

TEST(Dependence, ChainAcrossThreeStatements) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = 1.0;
      b = a * 2.0;
      c = b * 3.0;
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(D.depends(0, 1));
  EXPECT_TRUE(D.depends(1, 2));
  // No direct dependence 0 -> 2 (c uses only b).
  EXPECT_FALSE(D.depends(0, 2));
}

TEST(Dependence, AffineMayBeZeroBasics) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr(int64_t{0})));
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr(int64_t{5})));
  // i - 3 hits zero at i = 3; i + 9 stays positive over i in [0, 8).
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, 1, -3)));
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr::term(0, 1, 9)));
  // GCD test: 2i - 3 is always odd.
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr::term(0, 2, -3)));
  // Bounds test with a large but non-overflowing stride: 2^59 * i + 2^59
  // is at least 2^59 over the iteration space (7 * 2^59 still fits).
  EXPECT_FALSE(affineMayBeZero(
      K, AffineExpr::term(0, int64_t{1} << 59, int64_t{1} << 59)));
}

TEST(Dependence, AffineMayBeZeroOverflowIsConservative) {
  // Strides near INT64_MAX overflow the Banerjee bounds fold; the checked
  // arithmetic must degrade to "may be zero" instead of wrapping (which
  // could prove independence that does not hold).
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  // The GCD filter still separates this pair precisely (no overflow in
  // the magnitude path): INT64_MAX never divides 1.
  EXPECT_FALSE(affineMayBeZero(K, AffineExpr::term(0, INT64_MAX, -1)));
  // INT64_MIN cannot be negated for the GCD, and INT64_MIN * 7 overflows
  // the bounds fold: conservative acceptance.
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, INT64_MIN, 1)));
  // INT64_MAX * i + INT64_MAX is never zero for i in [0, 8), but the fold
  // endpoint INT64_MAX * 7 overflows: conservative acceptance, not UB.
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, INT64_MAX, INT64_MAX)));
  // Negating the INT64_MIN constant for the target overflows too.
  EXPECT_TRUE(affineMayBeZero(K, AffineExpr::term(0, 1, INT64_MIN)));
}

TEST(Dependence, MayAliasNearInt64Strides) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[32];
      loop i = 0 .. 8 { A[i] = s; }
    })");
  // Pathological subscripts (hand-built, not expressible in the surface
  // language): the difference INT64_MAX - 2 stays representable, but the
  // Banerjee fold over the iteration space overflows, so the answer must
  // degrade to may-alias instead of wrapping.
  Operand Huge1 = Operand::makeArray(0, {AffineExpr::term(0, INT64_MAX)});
  Operand Huge2 = Operand::makeArray(0, {AffineExpr::term(0, 2)});
  EXPECT_TRUE(DependenceInfo::mayAlias(K, Huge1, Huge1));
  EXPECT_TRUE(DependenceInfo::mayAlias(K, Huge1, Huge2));
  // And a provably disjoint near-limit pair still separates cleanly.
  Operand Far1 = Operand::makeArray(0, {AffineExpr::term(0, 1, 0)});
  Operand Far2 =
      Operand::makeArray(0, {AffineExpr::term(0, 1, int64_t{1} << 61)});
  EXPECT_FALSE(DependenceInfo::mayAlias(K, Far1, Far2));
}

//===----------------------------------------------------------------------===//
// Exact range-aware feasibility (the sharpened dependence tier)
//===----------------------------------------------------------------------===//

namespace {

/// Brute-force ground truth: does Diff evaluate to zero anywhere in the
/// (small) iteration space of K's nest?
bool bruteForceFeasibleZero(const Kernel &K, const AffineExpr &Diff) {
  std::vector<int64_t> Indices(K.Loops.size(), 0);
  std::function<bool(size_t)> Walk = [&](size_t D) -> bool {
    if (D == K.Loops.size())
      return Diff.evaluate(Indices) == 0;
    for (int64_t V = K.Loops[D].Lower; V < K.Loops[D].Upper;
         V += K.Loops[D].Step) {
      Indices[D] = V;
      if (Walk(D + 1))
        return true;
    }
    return false;
  };
  return Walk(0);
}

} // namespace

TEST(Dependence, AffineFeasibleZeroMatchesBruteForceOneVar) {
  // The exact test is advertised as exact (no slack either way) for one-
  // and two-variable differences that fold within int64: cross-check it
  // against exhaustive enumeration over a grid of strided loops and
  // subscript shapes.
  for (int64_t Lower : {0, 2}) {
    for (int64_t Step : {1, 2, 3, 5}) {
      Kernel K = parse("kernel k { scalar float s; array float A[256]; "
                       "loop i = " +
                       std::to_string(Lower) + " .. 40 step " +
                       std::to_string(Step) + " { A[i] = s; } }");
      for (int64_t Coef : {-7, -2, 1, 3, 4}) {
        for (int64_t Add = -20; Add <= 20; ++Add) {
          AffineExpr Diff = AffineExpr::term(0, Coef, Add);
          EXPECT_EQ(affineFeasibleZero(K, Diff),
                    bruteForceFeasibleZero(K, Diff))
              << "Lower=" << Lower << " Step=" << Step << " Coef=" << Coef
              << " Add=" << Add;
        }
      }
    }
  }
}

TEST(Dependence, AffineFeasibleZeroMatchesBruteForceTwoVar) {
  for (int64_t Step0 : {1, 3}) {
    for (int64_t Step1 : {1, 2}) {
      Kernel K = parse("kernel k { scalar float s; array float A[256]; "
                       "loop i = 0 .. 24 step " +
                       std::to_string(Step0) + " { loop j = 0 .. 16 step " +
                       std::to_string(Step1) + " { A[i+j] = s; } } }");
      for (int64_t C0 : {-5, 2, 7}) {
        for (int64_t C1 : {-7, 3}) {
          for (int64_t Add = -30; Add <= 30; Add += 3) {
            AffineExpr Diff =
                AffineExpr::term(0, C0) + AffineExpr::term(1, C1, Add);
            EXPECT_EQ(affineFeasibleZero(K, Diff),
                      bruteForceFeasibleZero(K, Diff))
                << "S0=" << Step0 << " S1=" << Step1 << " C0=" << C0
                << " C1=" << C1 << " Add=" << Add;
          }
        }
      }
    }
  }
}

TEST(Dependence, AffineFeasibleZeroConservativeCases) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[64];
      loop i = 0 .. 8 { loop j = 0 .. 8 { loop l = 0 .. 8 {
        A[i+j+l] = s;
      } } }
    })");
  // Three live dimensions exceed the exact solver: conservative "maybe".
  AffineExpr Three = AffineExpr::term(0, 1) + AffineExpr::term(1, 1) +
                     AffineExpr::term(2, 1, 100);
  EXPECT_TRUE(affineFeasibleZero(K, Three));
  // INT64_MAX * i + INT64_MAX folds without overflow here (lower bound
  // 0, step 1) and the solution i = -1 is off the box: exact refutation.
  EXPECT_FALSE(
      affineFeasibleZero(K, AffineExpr::term(0, INT64_MAX, INT64_MAX)));
  // With a nonzero lower bound the normalization C * Lower overflows,
  // and the test must degrade to "maybe" instead of wrapping.
  Kernel Shifted = parse(R"(
    kernel k { scalar float s; array float A[64];
      loop i = 2 .. 10 { A[i] = s; }
    })");
  EXPECT_TRUE(
      affineFeasibleZero(Shifted, AffineExpr::term(0, INT64_MAX, -1)));
  // A zero-trip nest has no iterations at all: nothing can collide.
  Kernel Empty = parse(R"(
    kernel k { scalar float s; array float A[8];
      loop i = 0 .. 0 { A[i] = s; }
    })");
  EXPECT_FALSE(affineFeasibleZero(Empty, AffineExpr(0)));
}

TEST(Dependence, StridedCongruenceSharpensAliasing) {
  // Write A[2i], read A[i+5] over i = 0,3,...,21: they collide only at
  // i == 5, which the step-3 lattice never visits. The base GCD/Banerjee
  // tier (raw coefficients) cannot see that; the range tier can.
  Kernel K = parse(R"(
    kernel k { array float x[64] readonly; array float A[64]; array float y[64];
      loop i = 0 .. 24 step 3 {
        A[2*i] = x[i] + 1.0;
        y[i] = A[i+5] * 2.0;
      }
    })");
  AffineExpr Diff = AffineExpr::term(0, 2) - AffineExpr::term(0, 1, 5);
  EXPECT_TRUE(affineMayBeZero(K, Diff));        // base tier: maybe
  EXPECT_FALSE(affineFeasibleZero(K, Diff));    // exact tier: never

  DependenceInfo Sharp(K);
  EXPECT_FALSE(Sharp.depends(0, 1));
  EXPECT_GT(Sharp.rangeDisprovedCount(), 0u);

  DependenceInfo Blunt(K, /*SharpenWithRanges=*/false);
  EXPECT_TRUE(Blunt.depends(0, 1));
  EXPECT_EQ(Blunt.rangeDisprovedCount(), 0u);
}

TEST(Dependence, TwoVarBoxInfeasibleLine) {
  // 5i + 48 == 7j has integer solutions (i, j) = (3+7k, 9+5k), none of
  // which land in the 8x8 box. GCD passes (gcd(5,7)=1), Banerjee passes
  // ([-1, 83] spans 0); only clamping the Bezout line against the actual
  // iteration box refutes the pair.
  Kernel K = parse(R"(
    kernel k { array float x[64] readonly; array float A[96]; array float y[64];
      loop i = 0 .. 8 { loop j = 0 .. 8 {
        A[5*i+48] = x[8*i+j] + 1.0;
        y[8*i+j] = A[7*j] * 0.5;
      } }
    })");
  AffineExpr Diff = AffineExpr::term(0, 5, 48) - AffineExpr::term(1, 7);
  EXPECT_TRUE(affineMayBeZero(K, Diff));
  EXPECT_FALSE(affineFeasibleZero(K, Diff));
  EXPECT_TRUE(bruteForceFeasibleZero(K, Diff) == false);

  DependenceInfo Sharp(K);
  EXPECT_FALSE(Sharp.depends(0, 1));
  EXPECT_GT(Sharp.rangeDisprovedCount(), 0u);
  // Nudging the constant onto the box (5i + 1 == 7j at i=4, j=3) keeps
  // the dependence: the exact tier refutes only what is truly infeasible.
  AffineExpr OnBox = AffineExpr::term(0, 5, 1) - AffineExpr::term(1, 7);
  EXPECT_TRUE(affineFeasibleZero(K, OnBox));
  EXPECT_TRUE(bruteForceFeasibleZero(K, OnBox));
}

TEST(Dependence, ComplementaryGuardsRefuteOutputDep) {
  Kernel K = parse(R"(
    kernel k { array float w[32] readonly;
      array float x[32] readonly; array float A[32];
      loop i = 0 .. 32 {
        if (w[i] < 0.5) A[i] = x[i] + 1.0;
        if (w[i] >= 0.5) A[i] = x[i] * 2.0;
      }
    })");
  DependenceInfo Sharp(K);
  EXPECT_FALSE(hasDep(Sharp, 0, 1, DepKind::Output));
  EXPECT_GT(Sharp.guardDisjointCount(), 0u);

  DependenceInfo Blunt(K, /*SharpenWithRanges=*/false);
  EXPECT_TRUE(hasDep(Blunt, 0, 1, DepKind::Output));
}

TEST(Dependence, GuardDisjointnessNeedsStableGuardValue) {
  // The same complementary pair, but the first store clobbers the guard
  // array between the two tests: `w[i]` may change meaning, so the
  // output dependence must survive.
  Kernel K = parse(R"(
    kernel k { array float w[32]; array float x[32] readonly;
      array float A[32];
      loop i = 0 .. 32 {
        if (w[i] < 0.5) A[i] = x[i] + 1.0;
        w[i] = x[i];
        if (w[i] >= 0.5) A[i] = x[i] * 2.0;
      }
    })");
  DependenceInfo Sharp(K);
  EXPECT_TRUE(hasDep(Sharp, 0, 2, DepKind::Output));
  EXPECT_EQ(Sharp.guardDisjointCount(), 0u);
}

TEST(Dependence, NonComplementaryGuardsKeepOutputDep) {
  // `< 0.5` vs `< 0.7` can both be taken: no refutation.
  Kernel K = parse(R"(
    kernel k { array float w[32] readonly;
      array float x[32] readonly; array float A[32];
      loop i = 0 .. 32 {
        if (w[i] < 0.5) A[i] = x[i] + 1.0;
        if (w[i] < 0.7) A[i] = x[i] * 2.0;
      }
    })");
  DependenceInfo Sharp(K);
  EXPECT_TRUE(hasDep(Sharp, 0, 1, DepKind::Output));
}

TEST(Dependence, GuardArrayReferenceCreatesFlowDep) {
  // A guard is a use like any other: a store feeding an array element
  // read inside a later statement's *guard* must produce a flow
  // dependence (regression for rhs-only use walks).
  Kernel K = parse(R"(
    kernel k { array float A[32]; array float B[32];
      array float x[32] readonly;
      loop i = 0 .. 32 {
        A[i] = x[i] + 1.0;
        if (A[i] > 0.0) B[i] = x[i];
      }
    })");
  DependenceInfo D(K);
  EXPECT_TRUE(hasDep(D, 0, 1, DepKind::Flow));
}

TEST(Dependence, RangeWorkloadsSharpen) {
  // The dedicated range workloads exist to demonstrate the sharpened
  // tier end to end: each must tally at least one refutation.
  for (const Workload &W : rangeWorkloads()) {
    DependenceInfo D(W.TheKernel);
    EXPECT_GT(D.rangeDisprovedCount() + D.guardDisjointCount(), 0u)
        << W.Name;
  }
}
