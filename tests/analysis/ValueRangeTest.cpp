//===- tests/analysis/ValueRangeTest.cpp ----------------------*- C++ -*-===//
//
// The interval client of the monotone framework: interval algebra
// (join/widen/NaN bit), the opcode transfer functions, exact affine
// ranges over strided domains, and whole-kernel fixpoints — literals,
// accumulator widening, guard-refined store ranges, and soundness
// against the scalar interpreter on a hand-picked kernel.
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueRange.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

constexpr double Inf = std::numeric_limits<double>::infinity();

} // namespace

TEST(ValueInterval, BasicsAndContainment) {
  ValueInterval Top = ValueInterval::top();
  EXPECT_TRUE(Top.isTop());
  EXPECT_TRUE(Top.contains(1e300));
  EXPECT_TRUE(Top.contains(std::nan("")));

  ValueInterval E = ValueInterval::exact(3.5);
  EXPECT_EQ(E.Lo, 3.5);
  EXPECT_EQ(E.Hi, 3.5);
  EXPECT_FALSE(E.MayNaN);
  EXPECT_TRUE(E.contains(3.5));
  EXPECT_FALSE(E.contains(3.4));
  EXPECT_FALSE(E.contains(std::nan("")));

  // The bounds are closed; the NaN bit is orthogonal to them.
  ValueInterval R = ValueInterval::range(-1.0, 2.0, /*MayNaN=*/true);
  EXPECT_TRUE(R.contains(-1.0));
  EXPECT_TRUE(R.contains(2.0));
  EXPECT_FALSE(R.contains(2.1));
  EXPECT_TRUE(R.contains(std::nan("")));
}

TEST(ValueInterval, JoinIsLeastUpperBound) {
  ValueInterval A = ValueInterval::range(0.0, 1.0);
  ValueInterval B = ValueInterval::range(3.0, 4.0, /*MayNaN=*/true);
  EXPECT_TRUE(A.joinWith(B));
  EXPECT_EQ(A.Lo, 0.0);
  EXPECT_EQ(A.Hi, 4.0);
  EXPECT_TRUE(A.MayNaN);
  // Joining a subset changes nothing.
  ValueInterval C = ValueInterval::range(1.0, 2.0);
  EXPECT_FALSE(A.joinWith(C));
}

TEST(ValueInterval, WideningJumpsGrowingBounds) {
  ValueInterval Prev = ValueInterval::range(0.0, 10.0);
  ValueInterval Cur = ValueInterval::range(0.0, 11.0);
  Cur.widenAgainst(Prev);
  EXPECT_EQ(Cur.Lo, 0.0); // stable bound keeps precision
  EXPECT_EQ(Cur.Hi, Inf); // growing bound jumps
  ValueInterval Shrink = ValueInterval::range(-5.0, 10.0);
  Shrink.widenAgainst(ValueInterval::range(0.0, 10.0));
  EXPECT_EQ(Shrink.Lo, -Inf);
  EXPECT_EQ(Shrink.Hi, 10.0);
}

TEST(ValueInterval, TransferFunctions) {
  ValueInterval A = ValueInterval::range(-2.0, 3.0);
  ValueInterval B = ValueInterval::range(1.0, 4.0);

  ValueInterval Sum = applyBinaryOp(OpCode::Add, A, B);
  EXPECT_EQ(Sum.Lo, -1.0);
  EXPECT_EQ(Sum.Hi, 7.0);

  // Multiplication takes the corner extremes: {-8, -2, 3, 12}.
  ValueInterval Prod = applyBinaryOp(OpCode::Mul, A, B);
  EXPECT_EQ(Prod.Lo, -8.0);
  EXPECT_EQ(Prod.Hi, 12.0);

  // Comparisons land in [0, 1] and never produce NaN, whatever the
  // inputs may be.
  ValueInterval Cmp = applyBinaryOp(OpCode::CmpLT, ValueInterval::top(),
                                    ValueInterval::top());
  EXPECT_GE(Cmp.Lo, 0.0);
  EXPECT_LE(Cmp.Hi, 1.0);
  EXPECT_FALSE(Cmp.MayNaN);
  // A decided comparison collapses to a point.
  ValueInterval Decided = applyBinaryOp(
      OpCode::CmpLT, ValueInterval::range(0.0, 1.0),
      ValueInterval::range(2.0, 3.0));
  EXPECT_EQ(Decided.Lo, 1.0);
  EXPECT_EQ(Decided.Hi, 1.0);

  ValueInterval Neg = applyUnaryOp(OpCode::Neg, A);
  EXPECT_EQ(Neg.Lo, -3.0);
  EXPECT_EQ(Neg.Hi, 2.0);

  // Division by an interval spanning zero can produce anything.
  ValueInterval Div = applyBinaryOp(OpCode::Div, B, A);
  EXPECT_TRUE(Div.Lo == -Inf && Div.Hi == Inf);
}

TEST(ValueInterval, SelectAndStoreConversion) {
  ValueInterval T = ValueInterval::range(1.0, 2.0);
  ValueInterval F = ValueInterval::range(10.0, 20.0);
  // Condition cannot be zero: the true arm alone.
  ValueInterval Taken =
      applySelect(ValueInterval::range(0.5, 1.0), T, F);
  EXPECT_EQ(Taken.Lo, 1.0);
  EXPECT_EQ(Taken.Hi, 2.0);
  // Condition exactly zero: the false arm alone.
  ValueInterval NotTaken = applySelect(ValueInterval::exact(0.0), T, F);
  EXPECT_EQ(NotTaken.Lo, 10.0);
  // Undecided: the hull.
  ValueInterval Either =
      applySelect(ValueInterval::range(0.0, 1.0), T, F);
  EXPECT_EQ(Either.Lo, 1.0);
  EXPECT_EQ(Either.Hi, 20.0);

  // Integer stores truncate toward zero.
  ValueInterval Frac = ValueInterval::range(-2.9, 3.9);
  ValueInterval AsInt = applyStoreConversion(ScalarType::Int32, Frac);
  EXPECT_EQ(AsInt.Lo, -2.0);
  EXPECT_EQ(AsInt.Hi, 3.0);
  ValueInterval AsFloat = applyStoreConversion(ScalarType::Float32, Frac);
  EXPECT_EQ(AsFloat.Lo, -2.9);
  EXPECT_EQ(AsFloat.Hi, 3.9);
}

TEST(ValueRange, AffineRangeOverStridedDomain) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[64];
      loop i = 0 .. 24 step 3 { A[i] = s; }
    })");
  // 2i + 1 over i in {0, 3, ..., 21}.
  OffsetInterval R = affineRangeOverDomain(K, AffineExpr::term(0, 2, 1));
  ASSERT_TRUE(R.Known);
  EXPECT_EQ(R.Lo, 1);
  EXPECT_EQ(R.Hi, 43);
  // Negative coefficient flips which end is the minimum.
  OffsetInterval Neg = affineRangeOverDomain(K, AffineExpr::term(0, -2, 1));
  ASSERT_TRUE(Neg.Known);
  EXPECT_EQ(Neg.Lo, -41);
  EXPECT_EQ(Neg.Hi, 1);
  // Overflowing folds degrade to unknown instead of wrapping.
  OffsetInterval Huge =
      affineRangeOverDomain(K, AffineExpr::term(0, INT64_MAX, 1));
  EXPECT_FALSE(Huge.Known);

  int64_t Lo = 0, Hi = 0;
  ASSERT_TRUE(loopIndexBounds(K, 0, Lo, Hi));
  EXPECT_EQ(Lo, 0);
  EXPECT_EQ(Hi, 21); // last lattice point, not Upper - 1
}

TEST(ValueRange, LiteralsAndAffinePropagation) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float X[16] readonly;
      loop i = 0 .. 16 {
        a = 2.0;
        b = a * 3.0 + 1.0;
      }
    })");
  ValueRangeInfo R = computeValueRanges(K);
  // After `a = 2.0`, statement 1 sees a == [2, 2]; b becomes [7, 7].
  EXPECT_EQ(R.scalarBefore(1, 0), ValueInterval::exact(2.0));
  EXPECT_EQ(R.Stmts[1].Rhs, ValueInterval::exact(7.0));
  EXPECT_EQ(R.ScalarExit[1], ValueInterval::exact(7.0));
  // Before statement 0 of a later iteration `a` is already known, but
  // the first iteration joins the unknown input: still top on entry.
  EXPECT_TRUE(R.scalarBefore(0, 0).isTop());
}

TEST(ValueRange, AccumulatorStaysSoundWithoutIterating) {
  Kernel K = parse(R"(
    kernel k { scalar float acc; array float X[4096] readonly;
      loop i = 0 .. 4096 { acc = acc + 1.0; }
    })");
  ValueRangeInfo R = computeValueRanges(K);
  // The accumulator's exit range must be sound (unbounded above: the
  // input is unknown and grows every iteration) and the solver must get
  // there in a handful of sweeps, not 4096.
  EXPECT_LT(R.Sweeps, 10u);
  EXPECT_EQ(R.ScalarExit[0].Hi, Inf);
}

TEST(ValueRange, ArrayLoadsAreUnknown) {
  Kernel K = parse(R"(
    kernel k { scalar float a; array float X[16] readonly;
      loop i = 0 .. 16 { a = X[i]; }
    })");
  ValueRangeInfo R = computeValueRanges(K);
  EXPECT_TRUE(R.ScalarExit[0].isTop());
}

TEST(ValueRange, GuardRefinesStoredValueButNotRhs) {
  Kernel K = parse(R"(
    kernel k { scalar float x, y; array float X[16] readonly;
      loop i = 0 .. 16 {
        x = X[i];
        if (x < 4.0) y = x;
      }
    })");
  ValueRangeInfo R = computeValueRanges(K);
  const StatementRanges &S = R.Stmts[1];
  // The RHS is always evaluated: x is unknown there.
  EXPECT_EQ(S.Rhs.Hi, Inf);
  // But the store only commits when x < 4.0: the taken-path refinement
  // caps the committed value (closed interval, so exactly 4.0).
  EXPECT_LE(S.Stored.Hi, 4.0);
  EXPECT_EQ(S.Stored.Lo, -Inf);
}

TEST(ValueRange, GuardClassification) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[16]; array float X[16] readonly;
      loop i = 0 .. 16 {
        a = 2.0;
        if (a > 1.0) A[i] = 1.0;
        if (a < 1.0) A[i] = 2.0;
        b = X[i];
        if (b > 1.0) A[i] = 3.0;
      }
    })");
  ValueRangeInfo R = computeValueRanges(K);
  EXPECT_EQ(classifyGuardByRange(K, K.Body.statement(1).guard(),
                                 R.ScalarIn[1]),
            GuardVerdict::AlwaysTaken);
  EXPECT_EQ(classifyGuardByRange(K, K.Body.statement(2).guard(),
                                 R.ScalarIn[2]),
            GuardVerdict::NeverTaken);
  EXPECT_EQ(classifyGuardByRange(K, K.Body.statement(4).guard(),
                                 R.ScalarIn[4]),
            GuardVerdict::Unknown);
}

TEST(ValueRange, NaNPropagatesThroughArithmetic) {
  // 0 * inf and inf - inf manufacture NaN; the may-bit must survive
  // arithmetic that could produce or propagate it.
  ValueInterval MaybeNaN = ValueInterval::range(0.0, 1.0, /*MayNaN=*/true);
  ValueInterval Plain = ValueInterval::exact(1.0);
  EXPECT_TRUE(applyBinaryOp(OpCode::Add, MaybeNaN, Plain).MayNaN);
  EXPECT_TRUE(applyUnaryOp(OpCode::Neg, MaybeNaN).MayNaN);
  // Adding opposite infinities can produce NaN even from NaN-free inputs.
  ValueInterval Wide = ValueInterval::range(-Inf, Inf);
  EXPECT_TRUE(applyBinaryOp(OpCode::Add, Wide, Wide).MayNaN);
  // Bounded NaN-free arithmetic stays NaN-free.
  EXPECT_FALSE(applyBinaryOp(OpCode::Add, Plain, Plain).MayNaN);
}
