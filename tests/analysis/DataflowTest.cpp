//===- tests/analysis/DataflowTest.cpp ------------------------*- C++ -*-===//
//
// The generic monotone framework, exercised through toy lattices rather
// than the interval client (ValueRangeTest covers that): a finite
// must-be-defined domain that converges without widening, an unbounded
// counter domain that terminates only because widening fires, a
// deliberately non-monotone problem that must hit MaxSweeps with
// Converged=false, and the zero-trip / straight-line block edge cases.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

//===--------------------------------------------------------------------===//
// Toy domain 1: must-be-defined scalars (finite lattice, join = AND)
//===--------------------------------------------------------------------===//

struct DefinedState : AbstractState {
  // Defined[Id]: scalar Id was assigned on EVERY path reaching this point.
  std::vector<bool> Defined;

  explicit DefinedState(std::vector<bool> D) : Defined(std::move(D)) {}

  std::unique_ptr<AbstractState> clone() const override {
    return std::make_unique<DefinedState>(Defined);
  }
  bool joinWith(const AbstractState &Other) override {
    const auto &O = static_cast<const DefinedState &>(Other);
    bool Changed = false;
    for (size_t I = 0; I != Defined.size(); ++I)
      if (Defined[I] && !O.Defined[I]) {
        Defined[I] = false;
        Changed = true;
      }
    return Changed;
  }
  void widenAgainst(const AbstractState &) override {} // finite lattice
  bool equals(const AbstractState &Other) const override {
    return Defined == static_cast<const DefinedState &>(Other).Defined;
  }
};

struct DefinedProblem : DataflowProblem {
  const Kernel &K;
  explicit DefinedProblem(const Kernel &K) : K(K) {}

  std::unique_ptr<AbstractState> boundaryState() const override {
    return std::make_unique<DefinedState>(
        std::vector<bool>(K.Scalars.size(), false));
  }
  void transferStatement(unsigned StmtIdx,
                         AbstractState &State) const override {
    const Statement &S = K.Body.statement(StmtIdx);
    if (S.lhs().isScalar() && !S.hasGuard())
      static_cast<DefinedState &>(State).Defined[S.lhs().symbol()] = true;
  }
};

//===--------------------------------------------------------------------===//
// Toy domain 2: statement-execution counter (infinite height; needs
// widening to terminate). Join takes the max; widening jumps to a cap.
//===--------------------------------------------------------------------===//

constexpr long CounterInfinity = 1L << 40;

struct CounterState : AbstractState {
  long Count = 0;

  std::unique_ptr<AbstractState> clone() const override {
    auto C = std::make_unique<CounterState>();
    C->Count = Count;
    return C;
  }
  bool joinWith(const AbstractState &Other) override {
    long O = static_cast<const CounterState &>(Other).Count;
    if (O > Count) {
      Count = O;
      return true;
    }
    return false;
  }
  void widenAgainst(const AbstractState &Previous) override {
    if (Count > static_cast<const CounterState &>(Previous).Count)
      Count = CounterInfinity;
  }
  bool equals(const AbstractState &Other) const override {
    return Count == static_cast<const CounterState &>(Other).Count;
  }
};

struct CounterProblem : DataflowProblem {
  std::unique_ptr<AbstractState> boundaryState() const override {
    return std::make_unique<CounterState>();
  }
  void transferStatement(unsigned, AbstractState &State) const override {
    // Saturating increment: the widened value must be a fixpoint of the
    // transfer (exactly like +inf is for interval arithmetic), or no
    // widening operator could ever stabilize the loop header.
    auto &C = static_cast<CounterState &>(State);
    if (C.Count < CounterInfinity)
      ++C.Count;
  }
};

/// Deliberately non-monotone: the transfer flips a bit, so the solver can
/// never reach a fixpoint and must stop at MaxSweeps.
struct FlipState : AbstractState {
  bool Bit = false;
  std::unique_ptr<AbstractState> clone() const override {
    auto C = std::make_unique<FlipState>();
    C->Bit = Bit;
    return C;
  }
  bool joinWith(const AbstractState &Other) override {
    // Last-writer join keeps the oscillation alive.
    bool O = static_cast<const FlipState &>(Other).Bit;
    if (Bit == O)
      return false;
    Bit = O;
    return true;
  }
  void widenAgainst(const AbstractState &) override {}
  bool equals(const AbstractState &Other) const override {
    return Bit == static_cast<const FlipState &>(Other).Bit;
  }
};

struct FlipProblem : DataflowProblem {
  std::unique_ptr<AbstractState> boundaryState() const override {
    return std::make_unique<FlipState>();
  }
  void transferStatement(unsigned, AbstractState &State) const override {
    auto &F = static_cast<FlipState &>(State);
    F.Bit = !F.Bit;
  }
};

} // namespace

TEST(Dataflow, MustDefinedConvergesWithoutWidening) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c; array float A[16];
      loop i = 0 .. 16 {
        a = A[i] + 1.0;
        b = a * 2.0;
        A[i] = b;
      }
    })");
  DefinedProblem P(K);
  DataflowResult R = solveBlockDataflow(K, P);
  ASSERT_TRUE(R.Converged);
  EXPECT_FALSE(R.Widened);
  ASSERT_EQ(R.StmtIn.size(), 3u);

  // Before statement 0 the back edge joins "nothing defined" (first
  // iteration) with "a, b defined" (later iterations): must-analysis
  // keeps the empty set.
  const auto &In0 = static_cast<const DefinedState &>(*R.StmtIn[0]);
  EXPECT_FALSE(In0.Defined[0]);
  EXPECT_FALSE(In0.Defined[1]);
  // Before statement 1, `a` is defined on every path; `b` is not.
  const auto &In1 = static_cast<const DefinedState &>(*R.StmtIn[1]);
  EXPECT_TRUE(In1.Defined[0]);
  EXPECT_FALSE(In1.Defined[1]);
  // After the block both are defined, `c` never is.
  const auto &Out = static_cast<const DefinedState &>(*R.BlockOut);
  EXPECT_TRUE(Out.Defined[0]);
  EXPECT_TRUE(Out.Defined[1]);
  EXPECT_FALSE(Out.Defined[2]);
}

TEST(Dataflow, GuardedDefinitionIsNotMustDefined) {
  Kernel K = parse(R"(
    kernel k { scalar float a; array float A[16]; array float w[16] readonly;
      loop i = 0 .. 16 {
        if (w[i] > 0.0) a = 1.0;
        A[i] = a + 1.0;
      }
    })");
  DefinedProblem P(K);
  DataflowResult R = solveBlockDataflow(K, P);
  ASSERT_TRUE(R.Converged);
  const auto &Out = static_cast<const DefinedState &>(*R.BlockOut);
  EXPECT_FALSE(Out.Defined[0]); // the guard may suppress the only def
}

TEST(Dataflow, UnboundedLatticeTerminatesViaWidening) {
  Kernel K = parse(R"(
    kernel k { scalar float a;
      loop i = 0 .. 1000000 { a = a + 1.0; }
    })");
  CounterProblem P;
  DataflowResult R = solveBlockDataflow(K, P);
  // Without widening this lattice climbs one step per sweep for a
  // million sweeps; the header widening must cut that to a handful.
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(R.Widened);
  EXPECT_LT(R.Sweeps, 10u);
  EXPECT_EQ(static_cast<const CounterState &>(*R.BlockOut).Count,
            CounterInfinity);
}

TEST(Dataflow, SingleIterationNestSkipsBackEdge) {
  // A trip-1 nest executes the block exactly once: no back edge, so no
  // join with a later iteration and no widening.
  Kernel K = parse(R"(
    kernel k { scalar float a; array float A[4];
      loop i = 0 .. 1 { a = a + 1.0; A[i] = a; }
    })");
  CounterProblem P;
  DataflowResult R = solveBlockDataflow(K, P);
  ASSERT_TRUE(R.Converged);
  EXPECT_FALSE(R.Widened);
  EXPECT_EQ(static_cast<const CounterState &>(*R.BlockOut).Count, 2);
}

TEST(Dataflow, ZeroTripNestStillYieldsStates) {
  Kernel K = parse(R"(
    kernel k { scalar float a; array float A[4];
      loop i = 0 .. 0 { a = a + 1.0; A[i] = a; }
    })");
  DefinedProblem P(K);
  DataflowResult R = solveBlockDataflow(K, P);
  ASSERT_TRUE(R.Converged);
  ASSERT_EQ(R.StmtIn.size(), 2u);
  ASSERT_NE(R.BlockOut, nullptr);
}

TEST(Dataflow, NonConvergingProblemReportsFailure) {
  Kernel K = parse(R"(
    kernel k { scalar float a;
      loop i = 0 .. 8 { a = a + 1.0; }
    })");
  FlipProblem P;
  DataflowResult R =
      solveBlockDataflow(K, P, /*WidenAfterSweeps=*/3, /*MaxSweeps=*/16);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Sweeps, 16u);
}
