//===- tests/analysis/KernelVerifierTest.cpp ------------------*- C++ -*-===//
//
// The static bounds verifier: every stock workload must prove clean
// (including the lint tier), hand-written out-of-bounds kernels must be
// rejected with their exact SK codes and offending-iteration intervals,
// the SK1x lints must fire on their target shapes, and the range-
// soundness oracle must pass the stock suite. Pipeline integration
// (verify-kernel as the first pass) is covered at the end.
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelVerifier.h"

#include "ir/Builder.h"
#include "ir/Parser.h"
#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

bool hasCode(const KernelVerifyResult &R, const std::string &Code) {
  for (const Diagnostic &D : R.Diags)
    if (D.Code == Code)
      return true;
  return false;
}

std::string messageOf(const KernelVerifyResult &R, const std::string &Code) {
  for (const Diagnostic &D : R.Diags)
    if (D.Code == Code)
      return D.Message;
  return "";
}

KernelVerifyResult verifyWithLints(const Kernel &K, bool Werror = false) {
  KernelVerifyOptions O;
  O.Lints = true;
  O.WarningsAsErrors = Werror;
  return verifyKernel(K, O);
}

} // namespace

//===----------------------------------------------------------------------===//
// The stock suite proves clean
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, AllStockWorkloadsProveInBounds) {
  auto CheckPool = [](const std::vector<Workload> &Pool) {
    for (const Workload &W : Pool) {
      KernelVerifyResult R = verifyWithLints(W.TheKernel);
      EXPECT_TRUE(R.BoundsProven) << W.Name;
      EXPECT_GT(R.RefsChecked, 0u) << W.Name;
      // Zero diagnostics of any tier: the suite is lint-clean too.
      EXPECT_TRUE(R.Diags.empty())
          << W.Name << ": " << renderDiagnostics(R.Diags);
    }
  };
  CheckPool(standardWorkloads());
  CheckPool(predicatedWorkloads());
  CheckPool(rangeWorkloads());
}

TEST(KernelVerifier, StockWorkloadsPassRangeSoundness) {
  for (const Workload &W : standardWorkloads()) {
    bool Skipped = true;
    std::optional<std::string> V =
        checkRangeSoundness(W.TheKernel, /*Seed=*/7, &Skipped);
    EXPECT_FALSE(V.has_value()) << W.Name << ": " << *V;
    EXPECT_FALSE(Skipped) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// Out-of-bounds rejection, one per SK0x code
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, RejectsOutOfBoundsLoad) {
  Kernel K = parse(R"(
    kernel k { array float A[16]; array float B[32];
      loop i = 0 .. 32 { B[i] = A[i] + 1.0; }
    })");
  KernelVerifyResult R = verifyKernel(K);
  EXPECT_FALSE(R.BoundsProven);
  EXPECT_TRUE(R.hasErrors());
  EXPECT_TRUE(hasCode(R, "SK01")) << renderDiagnostics(R.Diags);
  // The offending iterations are exact: A[i] breaks for i in [16, 31].
  std::string Msg = messageOf(R, "SK01");
  EXPECT_NE(Msg.find("offending iterations: i in [16, 31]"),
            std::string::npos)
      << Msg;
}

TEST(KernelVerifier, RejectsOutOfBoundsUnguardedStore) {
  Kernel K = parse(R"(
    kernel k { array float A[16];
      loop i = 0 .. 16 { A[i+4] = 1.0; }
    })");
  KernelVerifyResult R = verifyKernel(K);
  EXPECT_TRUE(hasCode(R, "SK02"));
  std::string Msg = messageOf(R, "SK02");
  EXPECT_NE(Msg.find("offset range [4, 19] outside [0, 16)"),
            std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("offending iterations: i in [12, 15]"),
            std::string::npos)
      << Msg;
}

TEST(KernelVerifier, RejectsOutOfBoundsGuardedStore) {
  // The guard may suppress the store dynamically, but the bounds
  // contract covers the reference anyway (the vector path computes the
  // address unconditionally).
  Kernel K = parse(R"(
    kernel k { array float A[8]; array float w[32] readonly;
      loop i = 0 .. 32 { if (w[i] > 0.0) A[i] = 1.0; }
    })");
  KernelVerifyResult R = verifyKernel(K);
  EXPECT_FALSE(R.BoundsProven);
  EXPECT_TRUE(hasCode(R, "SK03"));
}

TEST(KernelVerifier, RejectsUnboundableReference) {
  // INT64_MAX * i overflows the offset fold: not provable, SK04.
  KernelBuilder B("k");
  SymbolId S = B.scalar("s", ScalarType::Float32);
  SymbolId A = B.array("A", ScalarType::Float32, {32});
  unsigned I = B.loop("i", 0, 8);
  B.assign(B.arrayRef(A, {B.idx(I, INT64_MAX)}), B.scalarRef(S));
  KernelVerifyResult R = verifyKernel(B.take());
  EXPECT_FALSE(R.BoundsProven);
  EXPECT_TRUE(hasCode(R, "SK04"));
}

TEST(KernelVerifier, RejectsDepthOutsideNest) {
  // A subscript naming loop depth 1 in a depth-1 nest: SK04.
  KernelBuilder B("k");
  SymbolId S = B.scalar("s", ScalarType::Float32);
  SymbolId A = B.array("A", ScalarType::Float32, {32});
  B.loop("i", 0, 8);
  B.assign(B.arrayRef(A, {AffineExpr::term(1, 1)}), B.scalarRef(S));
  KernelVerifyResult R = verifyKernel(B.take());
  EXPECT_FALSE(R.BoundsProven);
  EXPECT_TRUE(hasCode(R, "SK04"));
}

TEST(KernelVerifier, RejectsRankMismatch) {
  // One subscript against a rank-2 array: SK05.
  KernelBuilder B("k");
  SymbolId S = B.scalar("s", ScalarType::Float32);
  SymbolId A = B.array("A", ScalarType::Float32, {8, 8});
  unsigned I = B.loop("i", 0, 8);
  B.assign(B.arrayRef(A, {B.idx(I)}), B.scalarRef(S));
  KernelVerifyResult R = verifyKernel(B.take());
  EXPECT_FALSE(R.BoundsProven);
  EXPECT_TRUE(hasCode(R, "SK05"));
}

TEST(KernelVerifier, NegativeOffsetsReportLowSideInterval) {
  Kernel K = parse(R"(
    kernel k { array float A[32]; array float B[32];
      loop i = 0 .. 32 { B[i] = A[i - 4] + 1.0; }
    })");
  KernelVerifyResult R = verifyKernel(K);
  EXPECT_TRUE(hasCode(R, "SK01"));
  std::string Msg = messageOf(R, "SK01");
  // The low side breaks first: i in [0, 3] drives the offset negative.
  EXPECT_NE(Msg.find("offending iterations: i in [0, 3]"),
            std::string::npos)
      << Msg;
}

TEST(KernelVerifier, StridedLatticeBoundsAreExact) {
  // Over i = 0, 3, ..., 21 the offset 3i stays within [0, 63]: in
  // bounds even though Upper - 1 = 23 would overflow 3 * 23 = 69. The
  // verifier must range over the lattice the loop actually visits.
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[64];
      loop i = 0 .. 24 step 3 { A[3*i] = s; }
    })");
  KernelVerifyResult R = verifyKernel(K);
  EXPECT_TRUE(R.BoundsProven) << renderDiagnostics(R.Diags);
}

//===----------------------------------------------------------------------===//
// The lint tier
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, LintsDeadScalarStore) {
  Kernel K = parse(R"(
    kernel k { scalar float a; array float A[16];
      loop i = 0 .. 16 {
        a = 1.0;
        a = 2.0;
        A[i] = a;
      }
    })");
  KernelVerifyResult R = verifyWithLints(K);
  EXPECT_TRUE(hasCode(R, "SK10"));
  EXPECT_TRUE(R.BoundsProven); // a lint does not break the proof
  EXPECT_FALSE(R.hasErrors());
}

TEST(KernelVerifier, GuardedOverwriteIsNotADeadStore) {
  Kernel K = parse(R"(
    kernel k { scalar float a; array float A[16]; array float w[16] readonly;
      loop i = 0 .. 16 {
        a = 1.0;
        if (w[i] > 0.0) a = 2.0;
        A[i] = a;
      }
    })");
  KernelVerifyResult R = verifyWithLints(K);
  EXPECT_FALSE(hasCode(R, "SK10"));
}

TEST(KernelVerifier, LintsUnusedScalar) {
  Kernel K = parse(R"(
    kernel k { scalar float used, unused; array float A[16];
      loop i = 0 .. 16 { A[i] = used; }
    })");
  KernelVerifyResult R = verifyWithLints(K);
  EXPECT_TRUE(hasCode(R, "SK11"));
  EXPECT_NE(messageOf(R, "SK11").find("'unused'"), std::string::npos);
}

TEST(KernelVerifier, LintsRangeProvenGuards) {
  Kernel K = parse(R"(
    kernel k { scalar float a; array float A[16];
      loop i = 0 .. 16 {
        a = 2.0;
        if (a > 1.0) A[i] = 1.0;
        if (a < 1.0) A[i] = 2.0;
      }
    })");
  KernelVerifyResult R = verifyWithLints(K);
  EXPECT_TRUE(hasCode(R, "SK12")); // always taken
  EXPECT_TRUE(hasCode(R, "SK13")); // never taken
}

TEST(KernelVerifier, LintsZeroTripNest) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[4];
      loop i = 0 .. 0 { A[i+100] = s; }
    })");
  KernelVerifyResult R = verifyWithLints(K);
  // The wild reference is unreachable: no bounds error, but SK14 warns.
  EXPECT_TRUE(R.BoundsProven);
  EXPECT_TRUE(hasCode(R, "SK14"));
}

TEST(KernelVerifier, WarningsAsErrorsPromotesLints) {
  Kernel K = parse(R"(
    kernel k { scalar float used, unused; array float A[16];
      loop i = 0 .. 16 { A[i] = used; }
    })");
  KernelVerifyResult Plain = verifyWithLints(K);
  EXPECT_FALSE(Plain.hasErrors());
  KernelVerifyResult Strict = verifyWithLints(K, /*Werror=*/true);
  EXPECT_TRUE(Strict.hasErrors());
  // Promotion changes severity, not the proof: bounds remain proven.
  EXPECT_TRUE(Strict.BoundsProven);
}

//===----------------------------------------------------------------------===//
// The range-soundness oracle
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, RangeSoundnessSkipsUnverifiableKernels) {
  Kernel Bad = parse(R"(
    kernel k { array float A[4]; array float B[32];
      loop i = 0 .. 32 { B[i] = A[i]; }
    })");
  bool Skipped = false;
  EXPECT_FALSE(checkRangeSoundness(Bad, 1, &Skipped).has_value());
  EXPECT_TRUE(Skipped);

  Kernel ZeroTrip = parse(R"(
    kernel k { scalar float s; array float A[4];
      loop i = 0 .. 0 { A[i] = s; }
    })");
  EXPECT_FALSE(checkRangeSoundness(ZeroTrip, 1, &Skipped).has_value());
  EXPECT_TRUE(Skipped);
}

TEST(KernelVerifier, RangeSoundnessHoldsOnGuardedAccumulator) {
  // Accumulators widen, guards refine, integer stores truncate: one
  // kernel exercising all three against the interpreter, several seeds.
  Kernel K = parse(R"(
    kernel k { scalar float acc; scalar int n; array float X[64] readonly;
      array int C[64];
      loop i = 0 .. 64 {
        acc = acc + X[i];
        if (X[i] > 0.5) n = n + 1;
        C[i] = n;
      }
    })");
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    bool Skipped = true;
    std::optional<std::string> V = checkRangeSoundness(K, Seed, &Skipped);
    EXPECT_FALSE(V.has_value()) << "seed " << Seed << ": " << *V;
    EXPECT_FALSE(Skipped);
  }
}

//===----------------------------------------------------------------------===//
// Pipeline integration (verify-kernel runs first)
//===----------------------------------------------------------------------===//

TEST(KernelVerifier, PipelineSurfacesKernelDiagnostics) {
  Kernel Bad = parse(R"(
    kernel k { array float A[16]; array float B[32];
      loop i = 0 .. 32 { B[i] = A[i] + 1.0; }
    })");
  PipelineOptions Opts;
  Opts.VerifyKernel = true;
  PipelineResult R = runPipeline(Bad, OptimizerKind::Global, Opts);
  EXPECT_FALSE(R.KernelVerified);
  ASSERT_FALSE(R.KernelDiags.empty());
  EXPECT_EQ(R.KernelDiags.front().Code, "SK01");

  Kernel Good = parse(R"(
    kernel k { array float A[32]; array float B[32];
      loop i = 0 .. 32 { B[i] = A[i] + 1.0; }
    })");
  PipelineResult G = runPipeline(Good, OptimizerKind::Global, Opts);
  EXPECT_TRUE(G.KernelVerified);
  EXPECT_TRUE(G.KernelDiags.empty());
}

TEST(KernelVerifier, PipelineSkipsVerifierWhenDisabled) {
  Kernel Bad = parse(R"(
    kernel k { array float A[16]; array float B[32];
      loop i = 0 .. 32 { B[i] = A[i] + 1.0; }
    })");
  PipelineOptions Opts;
  Opts.VerifyKernel = false;
  PipelineResult R = runPipeline(Bad, OptimizerKind::Global, Opts);
  EXPECT_FALSE(R.KernelVerified);
  EXPECT_TRUE(R.KernelDiags.empty());
}
