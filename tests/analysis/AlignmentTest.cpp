//===- tests/analysis/AlignmentTest.cpp -----------------------*- C++ -*-===//

#include "analysis/Alignment.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

/// Builds a kernel with array A[256] and a unit loop i = Lower..Upper
/// step Step, returning (kernel, array id).
Kernel loopKernel(int64_t Lower, int64_t Upper, int64_t Step) {
  KernelBuilder B("k");
  B.array("A", ScalarType::Float32, {256});
  B.loop("i", Lower, Upper, Step);
  return B.take();
}

Operand ref(int64_t Coeff, int64_t Add) {
  return Operand::makeArray(0, {AffineExpr::term(0, Coeff, Add)});
}

PackShape classify(const Kernel &K, std::vector<Operand> Refs) {
  std::vector<const Operand *> Ptrs;
  for (const Operand &R : Refs)
    Ptrs.push_back(&R);
  return classifyArrayPack(K, Ptrs);
}

} // namespace

TEST(Alignment, ContiguousAlignedUnitStride) {
  // Loop step 4 (unrolled by 4), lanes A[i..i+3] starting at 0.
  Kernel K = loopKernel(0, 64, 4);
  EXPECT_EQ(classify(K, {ref(1, 0), ref(1, 1), ref(1, 2), ref(1, 3)}),
            PackShape::ContiguousAligned);
}

TEST(Alignment, ContiguousUnalignedOffsetBase) {
  Kernel K = loopKernel(0, 64, 4);
  EXPECT_EQ(classify(K, {ref(1, 1), ref(1, 2), ref(1, 3), ref(1, 4)}),
            PackShape::ContiguousUnaligned);
}

TEST(Alignment, ContiguousUnalignedOddLowerBound) {
  // Same lane offsets, but the loop starts at 1 so the base address is
  // 1 mod 4 at the first iteration.
  Kernel K = loopKernel(1, 65, 4);
  EXPECT_EQ(classify(K, {ref(1, 0), ref(1, 1), ref(1, 2), ref(1, 3)}),
            PackShape::ContiguousUnaligned);
}

TEST(Alignment, MisalignedStep) {
  // Step 2: address advances by 2 per iteration, alignment flips.
  Kernel K = loopKernel(0, 64, 2);
  EXPECT_EQ(classify(K, {ref(1, 0), ref(1, 1), ref(1, 2), ref(1, 3)}),
            PackShape::ContiguousUnaligned);
}

TEST(Alignment, ReversedLanesArePermutedContiguous) {
  Kernel K = loopKernel(0, 64, 4);
  EXPECT_EQ(classify(K, {ref(1, 3), ref(1, 2), ref(1, 1), ref(1, 0)}),
            PackShape::PermutedContiguous);
}

TEST(Alignment, InterleavedPermutation) {
  Kernel K = loopKernel(0, 64, 4);
  EXPECT_EQ(classify(K, {ref(1, 1), ref(1, 0), ref(1, 3), ref(1, 2)}),
            PackShape::PermutedContiguous);
}

TEST(Alignment, StridedIsGather) {
  Kernel K = loopKernel(0, 64, 4);
  EXPECT_EQ(classify(K, {ref(2, 0), ref(2, 2), ref(2, 4), ref(2, 6)}),
            PackShape::Gather);
}

TEST(Alignment, DuplicateOffsetIsGather) {
  Kernel K = loopKernel(0, 64, 4);
  EXPECT_EQ(classify(K, {ref(1, 0), ref(1, 0), ref(1, 1), ref(1, 2)}),
            PackShape::Gather);
}

TEST(Alignment, MixedCoefficientIsGather) {
  Kernel K = loopKernel(0, 32, 4);
  // Lane 1 differs by a non-constant (depends on i): cannot be one block.
  EXPECT_EQ(classify(K, {ref(1, 0), ref(2, 1)}), PackShape::Gather);
}

TEST(Alignment, AllConstantLanes) {
  Kernel K = loopKernel(0, 64, 4);
  Operand C1 = Operand::makeConstant(1.0), C2 = Operand::makeConstant(2.0);
  std::vector<const Operand *> Lanes{&C1, &C2};
  EXPECT_EQ(classifyArrayPack(K, Lanes), PackShape::AllConstant);
}

TEST(Alignment, ScalarLaneIsGather) {
  Kernel K = loopKernel(0, 64, 4);
  KernelBuilder B("t");
  Operand S = Operand::makeScalar(0);
  Operand A = ref(1, 0);
  std::vector<const Operand *> Lanes{&S, &A};
  EXPECT_EQ(classifyArrayPack(K, Lanes), PackShape::Gather);
}

TEST(Alignment, IsAlignedRefChecksLowerBoundAndStep) {
  // i from 0 step 4: A[i] aligned to 4.
  Kernel K0 = loopKernel(0, 64, 4);
  EXPECT_TRUE(isAlignedRef(K0, ref(1, 0), 4));
  EXPECT_FALSE(isAlignedRef(K0, ref(1, 2), 4));
  // i from 2 step 4: A[i] has base offset 2.
  Kernel K2 = loopKernel(2, 66, 4);
  EXPECT_FALSE(isAlignedRef(K2, ref(1, 0), 4));
  EXPECT_TRUE(isAlignedRef(K2, ref(1, 2), 4)); // 2 + 2 = 4 = 0 mod 4
  // Coefficient times step must stay a multiple of the lane count.
  Kernel K1 = loopKernel(0, 64, 1);
  EXPECT_FALSE(isAlignedRef(K1, ref(1, 0), 4));
  EXPECT_TRUE(isAlignedRef(K1, ref(4, 0), 4));
  // Two-lane (double) alignment.
  EXPECT_TRUE(isAlignedRef(K0, ref(1, 2), 2));
}

TEST(Alignment, ConstantSubscriptAligned) {
  Kernel K = loopKernel(0, 64, 4);
  EXPECT_TRUE(isAlignedRef(K, ref(0, 8), 4));
  EXPECT_FALSE(isAlignedRef(K, ref(0, 9), 4));
}
