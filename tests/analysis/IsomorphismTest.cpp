//===- tests/analysis/IsomorphismTest.cpp ---------------------*- C++ -*-===//

#include "analysis/Isomorphism.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

bool iso(const Kernel &K, unsigned A, unsigned B) {
  return areIsomorphic(K, K.Body.statement(A), K.Body.statement(B));
}

} // namespace

TEST(Isomorphism, SameShapeDifferentSymbols) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = b * 2.0;
      c = d * 3.0;
    })");
  EXPECT_TRUE(iso(K, 0, 1));
}

TEST(Isomorphism, DifferentOpcode) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = b + 1.0;
      b = a - 1.0;
    })");
  EXPECT_FALSE(iso(K, 0, 1));
}

TEST(Isomorphism, DifferentShape) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = b + c;
      b = a + c * 2.0;
    })");
  EXPECT_FALSE(iso(K, 0, 1));
}

TEST(Isomorphism, LeafKindMatters) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[8];
      a = b + 1.0;
      b = A[3] + 1.0;
    })");
  // Scalar vs array at the same position: not isomorphic.
  EXPECT_FALSE(iso(K, 0, 1));
}

TEST(Isomorphism, LhsKindMatters) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[8];
      a = b + 1.0;
      A[0] = b + 1.0;
    })");
  EXPECT_FALSE(iso(K, 0, 1));
}

TEST(Isomorphism, ElementTypeMatters) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; scalar double c, d;
      a = b * 2.0;
      c = d * 2.0;
    })");
  EXPECT_FALSE(iso(K, 0, 1));
}

TEST(Isomorphism, ArrayElementTypeMatters) {
  Kernel K = parse(R"(
    kernel k { array float A[8]; array double B[8];
      loop i = 0 .. 8 {
        A[i] = A[i] * 2.0;
        B[i] = B[i] * 2.0;
      }
    })");
  EXPECT_FALSE(iso(K, 0, 1));
}

TEST(Isomorphism, ConstantsAdaptToLaneType) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = b * 2.0;
      c = d * 7.5;
    })");
  // Different constant values are still isomorphic (same kind).
  EXPECT_TRUE(iso(K, 0, 1));
}

TEST(Isomorphism, DifferentArraysSameType) {
  Kernel K = parse(R"(
    kernel k { array float A[16]; array float B[16];
      loop i = 0 .. 16 {
        A[i] = A[i] + 1.0;
        B[i] = B[i] + 1.0;
      }
    })");
  EXPECT_TRUE(iso(K, 0, 1));
}

TEST(Isomorphism, StatementElementType) {
  Kernel K = parse(R"(
    kernel k { scalar double x; array float A[8];
      x = 1.0;
      A[2] = 2.0;
    })");
  EXPECT_EQ(statementElementType(K, K.Body.statement(0)),
            ScalarType::Float64);
  EXPECT_EQ(statementElementType(K, K.Body.statement(1)),
            ScalarType::Float32);
}

TEST(Isomorphism, UnaryOps) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = sqrt(b);
      c = sqrt(d);
      b = abs(a);
    })");
  EXPECT_TRUE(iso(K, 0, 1));
  EXPECT_FALSE(iso(K, 0, 2));
}
