//===- tests/analysis/VectorVerifierTest.cpp ------------------*- C++ -*-===//
//
// Static translation validation of the vector IR: the lane-provenance
// verifier must accept every program the pipeline emits for the standard
// workload suite (zero false positives), reject the three bug-injection
// corruption shapes and the historical pack-cache forwarding bug with
// their specific diagnostic codes, surface the lint tier on demand, and
// agree with the dynamic equivalence oracle over randomized kernels.
//
//===----------------------------------------------------------------------===//

#include "analysis/VectorVerifier.h"

#include "ir/Parser.h"
#include "slp/Pipeline.h"
#include "support/Rng.h"
#include "vector/CodeGen.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Schedule make(std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  return S;
}

VectorProgram gen(const Kernel &K, const Schedule &S) {
  CodeGenOptions CG;
  return generateVectorProgram(
      K, S, CG,
      ScalarLayout::defaultLayout(static_cast<unsigned>(K.Scalars.size())));
}

bool hasCode(const VectorVerifyResult &R, const std::string &Code) {
  for (const Diagnostic &D : R.Diags)
    if (D.Code == Code)
      return true;
  return false;
}

std::string codes(const VectorVerifyResult &R) {
  std::string Out;
  for (const Diagnostic &D : R.Diags) {
    Out += D.render();
    Out += '\n';
  }
  return Out;
}

/// The four-statement dependent-pair block the injection tests corrupt:
/// statements 2/3 consume what statements 0/1 produce.
Kernel dependentPairs() {
  return parse(R"(
    kernel inj { array float A[8]; array float B[8] readonly;
                 array float C[8];
      A[0] = B[0] * 2.0;
      A[1] = B[1] * 2.0;
      C[0] = A[0] + 1.0;
      C[1] = A[1] + 1.0;
    })");
}

TEST(VectorVerifier, AcceptsValidProgram) {
  Kernel K = dependentPairs();
  VectorVerifyResult R = verifyVectorProgram(K, gen(K, make({{0, 1}, {2, 3}})));
  EXPECT_TRUE(R.ok()) << codes(R);
  EXPECT_EQ(R.Errors, 0u);
  EXPECT_EQ(R.StoreLanesChecked, 4u);
  EXPECT_GT(R.TermsInterned, 0u);
  EXPECT_GT(R.LocationsTracked, 0u);
}

TEST(VectorVerifier, RejectsDroppedItem) {
  // Bug injection 'drop-item': the last schedule item vanishes, so the
  // program never writes C[0]/C[1] — statement coverage (VV01).
  Kernel K = dependentPairs();
  VectorVerifyResult R = verifyVectorProgram(K, gen(K, make({{0, 1}})));
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCode(R, "VV01")) << codes(R);
}

TEST(VectorVerifier, RejectsDuplicatedLane) {
  // Bug injection 'dup-lane': statement 2 executes twice (VV02).
  Kernel K = dependentPairs();
  VectorVerifyResult R =
      verifyVectorProgram(K, gen(K, make({{0, 1}, {2, 3}, {2}})));
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCode(R, "VV02")) << codes(R);
}

TEST(VectorVerifier, RejectsSwappedDependentItems) {
  // Bug injection 'swap-dependent': the consumer pair runs first and reads
  // A before the producer pair writes it, so the stored lane values carry
  // initial-state provenance instead of the produced terms (VV04).
  Kernel K = dependentPairs();
  VectorVerifyResult R = verifyVectorProgram(K, gen(K, make({{2, 3}, {0, 1}})));
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCode(R, "VV04")) << codes(R);
}

TEST(VectorVerifier, RejectsPackCacheStyleForwarding) {
  // The historical pack-cache bug: an integer-typed store truncates, but
  // the cached register still holds the untruncated values; forwarding it
  // to a later use skips the truncation. Recreate the bug by rewiring the
  // reload of A to the pre-store multiply register and demand the verifier
  // sees the missing Trunc in the lane provenance (VV04).
  Kernel K = parse(R"(
    kernel trunc { array int A[8]; array float B[8] readonly;
                   array float C[8];
      A[0] = B[0] * 3.5;
      A[1] = B[1] * 3.5;
      C[0] = A[0] + 1.0;
      C[1] = A[1] + 1.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}, {2, 3}}));
  ASSERT_TRUE(verifyVectorProgram(K, P).ok())
      << codes(verifyVectorProgram(K, P));

  // Find the multiply feeding the int store and the subsequent reload of A
  // (the array with symbol id 0), then forward the former into the
  // latter's uses.
  int MulDst = -1, ReloadDst = -1;
  unsigned ReloadAt = 0;
  for (unsigned I = 0; I != P.Insts.size(); ++I) {
    const VInst &Inst = P.Insts[I];
    if (Inst.Kind == VInstKind::VectorOp && Inst.Op == OpCode::Mul &&
        MulDst < 0)
      MulDst = static_cast<int>(Inst.Dst);
    if (Inst.Kind == VInstKind::LoadPack && !Inst.LaneOps.empty() &&
        Inst.LaneOps.front().isArray() &&
        Inst.LaneOps.front().symbol() == 0) {
      ReloadDst = static_cast<int>(Inst.Dst);
      ReloadAt = I;
    }
  }
  ASSERT_GE(MulDst, 0);
  ASSERT_GE(ReloadDst, 0);
  for (unsigned I = ReloadAt + 1; I != P.Insts.size(); ++I) {
    VInst &Inst = P.Insts[I];
    if (Inst.Src0 == static_cast<unsigned>(ReloadDst))
      Inst.Src0 = static_cast<unsigned>(MulDst);
    if (Inst.Kind == VInstKind::VectorOp && !Inst.UnaryOp &&
        Inst.Src1 == static_cast<unsigned>(ReloadDst))
      Inst.Src1 = static_cast<unsigned>(MulDst);
  }

  VectorVerifyResult R = verifyVectorProgram(K, P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCode(R, "VV04")) << codes(R);
}

TEST(VectorVerifier, ReportsUseBeforeDef) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; scalar float s;
      s = A[0] * 2.0;
    })");
  VectorProgram P;
  P.NumVRegs = 2;
  VInst Op;
  Op.Kind = VInstKind::VectorOp;
  Op.Lanes = 2;
  Op.Dst = 0;
  Op.Src0 = 1; // never defined
  Op.Src1 = 1;
  Op.Op = OpCode::Add;
  P.Insts.push_back(Op);
  VInst Exec;
  Exec.Kind = VInstKind::ScalarExec;
  Exec.StmtId = 0;
  P.Insts.push_back(Exec);

  VectorVerifyResult R = verifyVectorProgram(K, P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasCode(R, "VV06")) << codes(R);
}

TEST(VectorVerifier, IdentityPermuteLint) {
  // An identity shuffle is correct but useless: VL02 at lint tier only.
  Kernel K = parse(R"(
    kernel copy { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}}));
  int StoreAt = -1;
  for (unsigned I = 0; I != P.Insts.size(); ++I)
    if (P.Insts[I].Kind == VInstKind::StorePack)
      StoreAt = static_cast<int>(I);
  ASSERT_GE(StoreAt, 0);
  VInst Shuf;
  Shuf.Kind = VInstKind::Shuffle;
  Shuf.Lanes = 2;
  Shuf.Dst = P.NumVRegs++;
  Shuf.Src0 = P.Insts[StoreAt].Src0;
  Shuf.Perm = {0, 1};
  P.Insts[StoreAt].Src0 = Shuf.Dst;
  P.Insts.insert(P.Insts.begin() + StoreAt, Shuf);

  VectorVerifyResult Quiet = verifyVectorProgram(K, P);
  EXPECT_TRUE(Quiet.ok()) << codes(Quiet);

  VectorVerifyOptions VO;
  VO.Lint = true;
  VectorVerifyResult Linted = verifyVectorProgram(K, P, VO);
  EXPECT_TRUE(Linted.ok()) << codes(Linted);
  EXPECT_TRUE(hasCode(Linted, "VL02")) << codes(Linted);
  EXPECT_GT(Linted.Warnings, 0u);

  // --werror promotes the lint to a hard failure.
  VO.WarningsAsErrors = true;
  VectorVerifyResult Strict = verifyVectorProgram(K, P, VO);
  EXPECT_FALSE(Strict.ok());
}

TEST(VectorVerifier, DeadLaneLint) {
  // A materialized load whose lanes never reach any store is wasted
  // memory work: VL01, correctness unaffected.
  Kernel K = parse(R"(
    kernel dead { array float A[8] readonly; scalar float s;
      s = A[0] * 2.0;
    })");
  VectorProgram P;
  P.NumVRegs = 1;
  VInst Load;
  Load.Kind = VInstKind::LoadPack;
  Load.Lanes = 2;
  Load.Dst = 0;
  Load.Mode = PackMode::ContiguousAligned;
  Load.LaneOps = {Operand::makeArray(0, {AffineExpr(int64_t{0})}),
                  Operand::makeArray(0, {AffineExpr(int64_t{1})})};
  P.Insts.push_back(Load);
  VInst Exec;
  Exec.Kind = VInstKind::ScalarExec;
  Exec.StmtId = 0;
  P.Insts.push_back(Exec);

  VectorVerifyOptions VO;
  VO.Lint = true;
  VectorVerifyResult R = verifyVectorProgram(K, P, VO);
  EXPECT_TRUE(R.ok()) << codes(R);
  EXPECT_TRUE(hasCode(R, "VL01")) << codes(R);
}

TEST(VectorVerifier, ZeroTripLoopVerifies) {
  Kernel K = parse(R"(
    kernel zerotrip { array float A[8]; scalar float s;
      loop i = 4 .. 4 {
        A[i] = s * 2.0;
      }
    })");
  PipelineOptions Options;
  Options.VerifyVector = true;
  for (OptimizerKind Kind :
       {OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
    PipelineResult R = runPipeline(K, Kind, Options);
    EXPECT_EQ(countDiagnostics(R.VerifyDiags, DiagSeverity::Error), 0u)
        << renderDiagnostics(R.VerifyDiags);
    EXPECT_TRUE(R.Verified);
  }
}

TEST(VectorVerifier, AliasingReferencesVerify) {
  // Overlapping strided references: the dependence analysis must keep the
  // provable order without the verifier flagging the emitted program.
  Kernel K = parse(R"(
    kernel alias { array float A[16];
      loop i = 0 .. 4 {
        A[2*i] = A[2*i+1] * 2.0;
        A[2*i+1] = A[2*i] + 1.0;
      }
    })");
  PipelineOptions Options;
  Options.VerifyVector = true;
  for (OptimizerKind Kind :
       {OptimizerKind::Native, OptimizerKind::LarsenSlp,
        OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
    PipelineResult R = runPipeline(K, Kind, Options);
    EXPECT_EQ(countDiagnostics(R.VerifyDiags, DiagSeverity::Error), 0u)
        << optimizerName(Kind) << ":\n" << renderDiagnostics(R.VerifyDiags);
    EXPECT_TRUE(R.Verified) << optimizerName(Kind);
  }
}

TEST(VectorVerifier, AcceptsStandardWorkloadSuite) {
  // Zero false positives over the paper's whole workload table, every
  // optimizer, with the lint tier on (lints must never be errors).
  PipelineOptions Options;
  Options.VerifyVector = true;
  Options.VerifyLint = true;
  for (const Workload &W : standardWorkloads()) {
    for (OptimizerKind Kind :
         {OptimizerKind::Native, OptimizerKind::LarsenSlp,
          OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
      EXPECT_EQ(countDiagnostics(R.VerifyDiags, DiagSeverity::Error), 0u)
          << W.Name << " (" << optimizerName(Kind) << "):\n"
          << renderDiagnostics(R.VerifyDiags);
      EXPECT_TRUE(R.Verified) << W.Name << " (" << optimizerName(Kind) << ")";
    }
  }
}

TEST(VectorVerifier, AcceptsWiderDatapath) {
  PipelineOptions Options;
  Options.VerifyVector = true;
  Options.Machine.DatapathBits = 256;
  for (const Workload &W : standardWorkloads()) {
    PipelineResult R = runPipeline(W.TheKernel, OptimizerKind::Global, Options);
    EXPECT_TRUE(R.Verified) << W.Name << ":\n"
                            << renderDiagnostics(R.VerifyDiags);
  }
}

TEST(VectorVerifier, RandomSweepAgreesWithDynamicOracle) {
  // 40 randomized kernels: the static verifier must accept everything the
  // dynamic equivalence check accepts (no false rejects on real pipeline
  // output), across the paper's own two schemes.
  Rng R(0x5EED5EED);
  PipelineOptions Options;
  Options.VerifyVector = true;
  unsigned Checked = 0;
  for (unsigned I = 0; I != 40; ++I) {
    RandomKernelOptions O;
    O.MinStatements = 2;
    O.MaxStatements = 10;
    O.TripCount = 8;
    O.NumLoops = I % 3 == 0 ? 2 : 1;
    Kernel K = randomKernel(R, O);
    OptimizerKind Kind =
        I % 2 ? OptimizerKind::Global : OptimizerKind::GlobalLayout;
    PipelineResult Result = runPipeline(K, Kind, Options);
    std::string Error;
    bool DynOk = checkEquivalence(K, Result, 0xC0FFEE + I, &Error);
    EXPECT_TRUE(DynOk) << Error;
    if (DynOk) {
      EXPECT_TRUE(Result.Verified)
          << optimizerName(Kind) << " kernel rejected statically:\n"
          << renderDiagnostics(Result.VerifyDiags);
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 40u);
}

// Predication: masked packs carry store obligations of the form
// guard(mask, value); VV12 pins mask-width mismatches, VV13 pins
// guard/mask disagreements between the scalar block and the program.

namespace {

/// The canonical guarded kernel: four if-converted clones group into one
/// superword statement whose store leaves as a MaskedStorePack.
Kernel guardedMemcpy() {
  return parse(R"(
    kernel gm {
      array float src[16] readonly;
      array float msk[16] readonly;
      array float dst[16];
      loop i = 0 .. 16 {
        if (msk[i] > 0.0) dst[i] = src[i];
      }
    })");
}

/// Guarded store of a splat constant. The stored value vector carries no
/// Select(mask, x, 0) wrapper (unlike guardedMemcpy, whose value flows
/// through a masked load), so mutations of the store surface as the
/// guard/mask disagreement VV13 rather than the generic stored-term
/// mismatch VV04.
Kernel guardedConstStore() {
  return parse(R"(
    kernel gc {
      array float m[16] readonly;
      array float dst[16];
      loop i = 0 .. 16 {
        if (m[i] > 0.0) dst[i] = 2.5;
      }
    })");
}

/// Runs the full pipeline on \p K and returns the result (expected to
/// vectorize and verify).
PipelineResult pipelineOf(const Kernel &K) {
  PipelineOptions Options;
  Options.VerifyVector = true;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, Options);
  EXPECT_TRUE(R.TransformationApplied);
  EXPECT_TRUE(R.Verified) << renderDiagnostics(R.VerifyDiags);
  return R;
}

int findInst(const VectorProgram &P, VInstKind Kind) {
  for (unsigned I = 0; I != P.Insts.size(); ++I)
    if (P.Insts[I].Kind == Kind)
      return static_cast<int>(I);
  return -1;
}

} // namespace

TEST(VectorVerifier, AcceptsGuardedKernelEndToEnd) {
  Kernel K = guardedMemcpy();
  PipelineResult R = pipelineOf(K);
  // The emitted program must actually take the masked path.
  EXPECT_GE(findInst(R.Program, VInstKind::MaskedStorePack), 0);
}

TEST(VectorVerifier, AcceptsPredicatedWorkloadSuite) {
  PipelineOptions Options;
  Options.VerifyVector = true;
  Options.VerifyLint = true;
  for (const Workload &W : predicatedWorkloads()) {
    for (OptimizerKind Kind :
         {OptimizerKind::Native, OptimizerKind::LarsenSlp,
          OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
      EXPECT_EQ(countDiagnostics(R.VerifyDiags, DiagSeverity::Error), 0u)
          << W.Name << " (" << optimizerName(Kind) << "):\n"
          << renderDiagnostics(R.VerifyDiags);
      EXPECT_TRUE(R.Verified) << W.Name << " (" << optimizerName(Kind) << ")";
    }
  }
}

TEST(VectorVerifier, RejectsCorruptedStoreMask) {
  // Rewire the masked store's mask register to its value register: the
  // mask lane term no longer matches the statements' guard terms (VV13).
  Kernel K = guardedConstStore();
  PipelineResult R = pipelineOf(K);
  VectorProgram P = R.Program;
  int At = findInst(P, VInstKind::MaskedStorePack);
  ASSERT_GE(At, 0);
  P.Insts[At].Src1 = P.Insts[At].Src0;
  VectorVerifyResult V = verifyVectorProgram(R.Final, P);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasCode(V, "VV13")) << codes(V);
}

TEST(VectorVerifier, RejectsUnguardedStoreOfGuardedStatements) {
  // Demote the masked store to a plain StorePack: the lanes now write
  // unconditionally, but the scalar block says the stores are guarded.
  Kernel K = guardedConstStore();
  PipelineResult R = pipelineOf(K);
  VectorProgram P = R.Program;
  int At = findInst(P, VInstKind::MaskedStorePack);
  ASSERT_GE(At, 0);
  P.Insts[At].Kind = VInstKind::StorePack;
  VectorVerifyResult V = verifyVectorProgram(R.Final, P);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasCode(V, "VV13")) << codes(V);
}

TEST(VectorVerifier, RejectsMaskWidthMismatch) {
  // Narrow the masked store to two lanes while its mask register stays
  // four wide: mask-width mismatch (VV12). The two no-longer-covered
  // statements additionally surface as coverage errors; VV12 must be
  // among the diagnostics.
  Kernel K = guardedMemcpy();
  PipelineResult R = pipelineOf(K);
  VectorProgram P = R.Program;
  int At = findInst(P, VInstKind::MaskedStorePack);
  ASSERT_GE(At, 0);
  VInst &Store = P.Insts[At];
  ASSERT_EQ(Store.Lanes, 4u);
  Store.Lanes = 2;
  Store.LaneOps.resize(2);
  if (Store.StmtIds.size() > 2)
    Store.StmtIds.resize(2);
  VectorVerifyResult V = verifyVectorProgram(R.Final, P);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasCode(V, "VV12")) << codes(V);
}

TEST(VectorVerifier, PredicatedRandomSweepAgreesWithDynamicOracle) {
  // Randomized guarded kernels: static accept must track dynamic
  // equivalence exactly, as it does for straight-line kernels.
  Rng R(0xBADC0DE5);
  PipelineOptions Options;
  Options.VerifyVector = true;
  unsigned Checked = 0;
  for (unsigned I = 0; I != 30; ++I) {
    RandomKernelOptions O;
    O.MinStatements = 2;
    O.MaxStatements = 8;
    O.TripCount = 8;
    O.GuardProbability = 0.5;
    O.NumLoops = I % 3 == 0 ? 2 : 1;
    Kernel K = randomKernel(R, O);
    OptimizerKind Kind =
        I % 2 ? OptimizerKind::Global : OptimizerKind::GlobalLayout;
    PipelineResult Result = runPipeline(K, Kind, Options);
    std::string Error;
    bool DynOk = checkEquivalence(K, Result, 0xFACE + I, &Error);
    EXPECT_TRUE(DynOk) << Error;
    if (DynOk) {
      EXPECT_TRUE(Result.Verified)
          << optimizerName(Kind) << " kernel rejected statically:\n"
          << renderDiagnostics(Result.VerifyDiags);
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, 30u);
}

} // namespace
