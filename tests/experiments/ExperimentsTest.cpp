//===- tests/experiments/ExperimentsTest.cpp ------------------*- C++ -*-===//
//
// Unit tests for the experiments library's aggregation logic, on
// synthetic rows (the live-suite shape assertions live in ShapeTest.cpp).
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

BenchmarkRow row(const char *Name, double Native, double Slp, double Global,
                 double Layout) {
  BenchmarkRow R;
  R.Name = Name;
  R.Native = Native;
  R.Slp = Slp;
  R.Global = Global;
  R.GlobalLayout = Layout;
  return R;
}

SuiteEvaluation sample() {
  SuiteEvaluation E;
  E.Rows.push_back(row("a", 0.00, 0.10, 0.20, 0.30));
  E.Rows.push_back(row("b", 0.05, 0.05, 0.05, 0.05)); // full tie
  E.Rows.push_back(row("c", 0.00, 0.00, 0.10, 0.10)); // slp==native
  E.Rows.push_back(row("d", 0.10, 0.20, 0.20, 0.24)); // global==slp
  return E;
}

} // namespace

TEST(Experiments, Averages) {
  SuiteEvaluation E = sample();
  EXPECT_NEAR(E.averageNative(), (0.00 + 0.05 + 0.00 + 0.10) / 4, 1e-12);
  EXPECT_NEAR(E.averageSlp(), (0.10 + 0.05 + 0.00 + 0.20) / 4, 1e-12);
  EXPECT_NEAR(E.averageGlobal(), (0.20 + 0.05 + 0.10 + 0.20) / 4, 1e-12);
  EXPECT_NEAR(E.averageGlobalLayout(), (0.30 + 0.05 + 0.10 + 0.24) / 4,
              1e-12);
}

TEST(Experiments, TieCounts) {
  SuiteEvaluation E = sample();
  EXPECT_EQ(E.countGlobalEqualsSlp(), 2u); // b and d
  EXPECT_EQ(E.countSlpEqualsNative(), 2u); // b and c
}

TEST(Experiments, LayoutHelpedCount) {
  SuiteEvaluation E = sample();
  EXPECT_EQ(E.countLayoutHelped(), 2u); // a and d
  EXPECT_FALSE(E.Rows[1].layoutHelped());
}

TEST(Experiments, MaxGapReportsBenchmark) {
  SuiteEvaluation E = sample();
  std::string Which;
  double Gap = E.maxGlobalLayoutOverSlp(&Which);
  EXPECT_NEAR(Gap, 0.20, 1e-12); // row a: 0.30 - 0.10
  EXPECT_EQ(Which, "a");
}

TEST(Experiments, ToleranceRespectsBand) {
  SuiteEvaluation E;
  E.Rows.push_back(row("x", 0.100, 0.1004, 0.30, 0.30));
  EXPECT_EQ(E.countSlpEqualsNative(5e-4), 1u);
  EXPECT_EQ(E.countSlpEqualsNative(1e-5), 0u);
}

TEST(Experiments, EmptySuite) {
  SuiteEvaluation E;
  EXPECT_DOUBLE_EQ(E.averageGlobal(), 0.0);
  EXPECT_EQ(E.countGlobalEqualsSlp(), 0u);
  EXPECT_DOUBLE_EQ(E.maxGlobalLayoutOverSlp(), 0.0);
}
