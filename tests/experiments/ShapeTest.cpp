//===- tests/experiments/ShapeTest.cpp ------------------------*- C++ -*-===//
//
// Regression tests pinning the reproduced evaluation to the paper's
// *shape*: who wins, where the ties are, and the rough magnitudes.
// If a change to the optimizers or the cost model silently breaks the
// reproduction, these tests fail before the benches are ever looked at.
// Paper targets are quoted per assertion; bands are deliberately loose
// (this is a simulation-backed reproduction, not a cycle-exact one).
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

/// One evaluation per machine, shared by all shape assertions.
const SuiteEvaluation &intel() {
  static SuiteEvaluation E = evaluateSuite(MachineModel::intelDunnington());
  return E;
}

const SuiteEvaluation &amd() {
  static SuiteEvaluation E = evaluateSuite(MachineModel::amdPhenomII());
  return E;
}

} // namespace

TEST(Fig16Shape, SchemeOrderingHoldsPerBenchmark) {
  for (const BenchmarkRow &R : intel().Rows) {
    EXPECT_GE(R.Slp, R.Native - 5e-4) << R.Name;
    EXPECT_GE(R.Global, R.Slp - 5e-4) << R.Name;
    EXPECT_GE(R.GlobalLayout, R.Global - 5e-4) << R.Name;
    EXPECT_GE(R.Native, -1e-9) << R.Name; // guard: never a slowdown
  }
}

TEST(Fig16Shape, GlobalTiesSlpOnThreeBenchmarks) {
  // Paper: "our approach (Global) and SLP generate the same results in
  // three of all the benchmarks tested."
  EXPECT_EQ(intel().countGlobalEqualsSlp(), 3u);
}

TEST(Fig16Shape, SlpTiesNativeOnFourBenchmarks) {
  // Paper: "SLP and Native result in the same output code and
  // performance in four applications."
  // (milc counts as a fifth tie here: both schemes judge every group
  // unprofitable and emit identical scalar code.)
  EXPECT_GE(intel().countSlpEqualsNative(), 4u);
  EXPECT_LE(intel().countSlpEqualsNative(), 5u);
}

TEST(Fig16Shape, GlobalAverageNearPaper) {
  // Paper: ~12% average Global improvement on the Intel machine.
  EXPECT_GE(intel().averageGlobal(), 0.09);
  EXPECT_LE(intel().averageGlobal(), 0.17);
}

TEST(Fig19Shape, LayoutHelpsRoughlySevenBenchmarks) {
  // Paper: the layout stage brings additional benefit in 7 of 16.
  unsigned Helped = intel().countLayoutHelped();
  EXPECT_GE(Helped, 6u);
  EXPECT_LE(Helped, 10u);
}

TEST(Fig19Shape, MaxGapOverSlpNearPaper) {
  // Paper: highest Global+Layout improvement over SLP is about 15.2%.
  std::string Which;
  double Gap = intel().maxGlobalLayoutOverSlp(&Which);
  EXPECT_GE(Gap, 0.12) << Which;
  EXPECT_LE(Gap, 0.22) << Which;
}

TEST(Fig19Shape, GlobalLayoutAverageNearPaper) {
  // Paper: ~14.9% average Global+Layout improvement on Intel.
  EXPECT_GE(intel().averageGlobalLayout(), 0.12);
  EXPECT_LE(intel().averageGlobalLayout(), 0.20);
}

TEST(Fig20Shape, AmdAveragesNearPaper) {
  // Paper: 10.8% (Global) and 14.1% (Global+Layout) on the AMD machine.
  EXPECT_GE(amd().averageGlobal(), 0.07);
  EXPECT_LE(amd().averageGlobal(), 0.14);
  EXPECT_GE(amd().averageGlobalLayout(), 0.10);
  EXPECT_LE(amd().averageGlobalLayout(), 0.18);
}

TEST(Fig20Shape, AmdBelowIntelDueToPackingCosts) {
  EXPECT_LT(amd().averageGlobal(), intel().averageGlobal());
  EXPECT_LT(amd().averageGlobalLayout(), intel().averageGlobalLayout());
}

TEST(Fig20Shape, AmdOrderingStillHolds) {
  for (const BenchmarkRow &R : amd().Rows) {
    EXPECT_GE(R.Global, R.Slp - 5e-4) << R.Name;
    EXPECT_GE(R.GlobalLayout, R.Global - 5e-4) << R.Name;
  }
}

TEST(Fig18Shape, EliminationNearHalfAndGrowsWithWidth) {
  // Paper: ~49.1% of dynamic instructions eliminated at 128 bits,
  // rising to ~54.5% at 1024 bits.
  double At128 = instructionElimination(128);
  double At256 = instructionElimination(256);
  EXPECT_GE(At128, 0.40);
  EXPECT_LE(At128, 0.55);
  EXPECT_GT(At256, At128);
}

TEST(Fig21Shape, ImprovementsGrowSlightlyWithCores) {
  std::vector<unsigned> Cores{1, 2, 4, 6, 8, 10, 12};
  for (OptimizerKind Kind :
       {OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
    std::vector<MulticoreRow> Rows =
        evaluateMulticore(Kind, MachineModel::intelDunnington(), Cores);
    EXPECT_EQ(Rows.size(), 6u); // the six NAS benchmarks
    for (const MulticoreRow &R : Rows) {
      for (unsigned I = 1; I != R.ReductionByCoreCount.size(); ++I)
        EXPECT_GE(R.ReductionByCoreCount[I],
                  R.ReductionByCoreCount[I - 1] - 1e-9)
            << R.Name << " cores " << Cores[I];
      // "Slightly": 12-core improvement within 8pp of single-core.
      EXPECT_LE(R.ReductionByCoreCount.back(),
                R.ReductionByCoreCount.front() + 0.08)
          << R.Name;
    }
  }
}

TEST(Fig17Shape, GlobalExecutesFewerCoreInstructionsThanSlp) {
  for (const BenchmarkRow &R : intel().Rows)
    EXPECT_LE(R.GlobalSim.CoreInstrs, R.SlpSim.CoreInstrs) << R.Name;
}

TEST(Fig17Shape, PackReductionOnComparableCoverage) {
  // Where both schemes vectorize the same statements, Global packs less
  // (the reuse effect of Figure 17(b)).
  double Sum = 0;
  unsigned N = 0;
  for (const BenchmarkRow &R : intel().Rows) {
    if (R.SlpVectorizedStmts != R.GlobalVectorizedStmts ||
        R.SlpSim.PackUnpackInstrs == 0)
      continue;
    Sum += 1.0 - static_cast<double>(R.GlobalSim.PackUnpackInstrs) /
                     static_cast<double>(R.SlpSim.PackUnpackInstrs);
    ++N;
  }
  ASSERT_GT(N, 2u);
  EXPECT_GT(Sum / N, 0.15); // paper reports ~43.5% on its workloads
}

TEST(Ablation, EveryMechanismContributes) {
  PipelineOptions Full;
  auto Avg = [](const PipelineOptions &O) {
    double Sum = 0;
    std::vector<Workload> Suite = standardWorkloads();
    for (const Workload &W : Suite)
      Sum += runPipeline(W.TheKernel, OptimizerKind::Global, O)
                 .improvement();
    return Sum / Suite.size();
  };
  double FullAvg = Avg(Full);

  PipelineOptions NoCache = Full;
  NoCache.Ablation.CacheLoadedPacks = false;
  EXPECT_LT(Avg(NoCache), FullAvg - 0.005);

  PipelineOptions NoReuse = Full;
  NoReuse.Ablation.ReuseAwareGrouping = false;
  EXPECT_LE(Avg(NoReuse), FullAvg + 1e-9);

  PipelineOptions NoPermuted = Full;
  NoPermuted.Ablation.PermutedReuse = false;
  EXPECT_LE(Avg(NoPermuted), FullAvg + 1e-9);

  PipelineOptions NoPruning = Full;
  NoPruning.Ablation.GroupPruning = false;
  EXPECT_LE(Avg(NoPruning), FullAvg + 1e-9);
}
