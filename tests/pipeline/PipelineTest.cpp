//===- tests/pipeline/PipelineTest.cpp ------------------------*- C++ -*-===//

#include "slp/Pipeline.h"

#include "ir/Parser.h"
#include "slp/Verifier.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Kernel streamingKernel() {
  return parse(R"(
    kernel stream { array float A[64] readonly; array float B[64];
      loop i = 0 .. 64 { B[i] = A[i] * 2.0 + 1.0; } })");
}

} // namespace

TEST(Pipeline, UnrollsToDatapathWidth) {
  PipelineOptions O;
  PipelineResult R = runPipeline(streamingKernel(), OptimizerKind::Global, O);
  EXPECT_EQ(R.Preprocessed.Body.size(), 4u); // 4 float lanes at 128 bits
  EXPECT_EQ(R.Preprocessed.Loops[0].Step, 4);
}

TEST(Pipeline, DoubleKernelUnrollsByTwo) {
  Kernel K = parse(R"(
    kernel d { array double A[64] readonly; array double B[64];
      loop i = 0 .. 64 { B[i] = A[i] * 2.0; } })");
  PipelineOptions O;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, O);
  EXPECT_EQ(R.Preprocessed.Body.size(), 2u);
}

TEST(Pipeline, GlobalVectorizesStream) {
  PipelineOptions O;
  PipelineResult R = runPipeline(streamingKernel(), OptimizerKind::Global, O);
  EXPECT_TRUE(R.TransformationApplied);
  EXPECT_EQ(R.TheSchedule.numGroups(), 1u);
  EXPECT_GT(R.improvement(), 0.0);
}

TEST(Pipeline, ScalarKindIsIdentity) {
  PipelineOptions O;
  PipelineResult R = runPipeline(streamingKernel(), OptimizerKind::Scalar, O);
  EXPECT_EQ(R.TheSchedule.numGroups(), 0u);
  EXPECT_NEAR(R.improvement(), 0.0, 1e-9);
}

TEST(Pipeline, CostGuardRevertsHopelessBlocks) {
  // A single strided one-op statement: vectorizing it loses.
  Kernel K = parse(R"(
    kernel bad { array float A[512]; array float B[512];
      loop i = 0 .. 64 { B[8*i] = A[8*i] * 2.0; } })");
  PipelineOptions O;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, O);
  EXPECT_FALSE(R.TransformationApplied);
  EXPECT_EQ(R.TheSchedule.numGroups(), 0u);
  EXPECT_NEAR(R.improvement(), 0.0, 1e-9);
}

TEST(Pipeline, GuardDisabledKeepsTransformation) {
  Kernel K = parse(R"(
    kernel bad { array float A[512]; array float B[512];
      loop i = 0 .. 64 { B[8*i] = A[8*i] * 2.0; } })");
  PipelineOptions O;
  O.CostModelGuard = false;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, O);
  EXPECT_TRUE(R.TransformationApplied);
  EXPECT_GT(R.TheSchedule.numGroups(), 0u);
}

TEST(Pipeline, PruningKeepsProfitableSubset) {
  // One streaming family (profitable) + one strided 1-op family (not):
  // the per-group cost model keeps the former and demotes the latter.
  Kernel K = parse(R"(
    kernel mix { array float A[64] readonly; array float B[64];
      array float C[1024]; array float D[1024];
      loop i = 0 .. 64 {
        B[i] = A[i] * 2.0 + 1.0;
        D[8*i] = C[8*i] * 2.0;
      } })");
  PipelineOptions O;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, O);
  EXPECT_TRUE(R.TransformationApplied);
  EXPECT_EQ(R.TheSchedule.numGroups(), 1u); // only the streaming family
  // And the kept group is the B/A one (all its lanes write B).
  for (const ScheduleItem &I : R.TheSchedule.Items)
    if (I.isGroup())
      for (unsigned S : I.Lanes)
        EXPECT_TRUE(R.Preprocessed.Body.statement(S).lhs().symbol() ==
                    *R.Preprocessed.findArray("B"));
}

TEST(Pipeline, LayoutAppliedOnlyWhenBeneficial) {
  // Strided read-only refs with reuse: replication should fire.
  Kernel Good = parse(R"(
    kernel good { array float A[4200] readonly; array float B[2100];
      array float C[2100];
      loop i = 0 .. 512 {
        B[2*i] = A[8*i] * 2.0 + A[8*i+4] * 3.0;
        C[2*i] = A[8*i] * 3.0 - A[8*i+4] * 2.0;
      } })");
  PipelineOptions O;
  PipelineResult R = runPipeline(Good, OptimizerKind::GlobalLayout, O);
  EXPECT_TRUE(R.LayoutApplied);
  EXPECT_GT(R.Layout.ArrayPacksReplicated, 0u);
  EXPECT_GT(R.improvement(),
            runPipeline(Good, OptimizerKind::Global, O).improvement());
}

TEST(Pipeline, LayoutFallsBackWhenUseless) {
  // Fully contiguous code: nothing for the layout stage to improve.
  PipelineOptions O;
  PipelineResult R =
      runPipeline(streamingKernel(), OptimizerKind::GlobalLayout, O);
  EXPECT_FALSE(R.LayoutApplied);
  EXPECT_DOUBLE_EQ(
      R.improvement(),
      runPipeline(streamingKernel(), OptimizerKind::Global, O).improvement());
}

TEST(Pipeline, SchedulesAlwaysValid) {
  Kernel K = parse(R"(
    kernel k { scalar float t; array float A[64] readonly; array float B[64];
      loop i = 0 .. 64 {
        t = A[i] * 2.0;
        B[i] = t + 1.0;
      } })");
  PipelineOptions O;
  for (OptimizerKind Kind :
       {OptimizerKind::Scalar, OptimizerKind::Native,
        OptimizerKind::LarsenSlp, OptimizerKind::Global,
        OptimizerKind::GlobalLayout}) {
    PipelineResult R = runPipeline(K, Kind, O);
    DependenceInfo Deps(R.Preprocessed);
    EXPECT_TRUE(verifySchedule(R.Preprocessed, Deps, R.TheSchedule,
                               O.Machine.DatapathBits)
                    .empty())
        << optimizerName(Kind);
  }
}

TEST(Pipeline, OptimizerNames) {
  EXPECT_STREQ(optimizerName(OptimizerKind::Scalar), "Scalar");
  EXPECT_STREQ(optimizerName(OptimizerKind::Native), "Native");
  EXPECT_STREQ(optimizerName(OptimizerKind::LarsenSlp), "SLP");
  EXPECT_STREQ(optimizerName(OptimizerKind::Global), "Global");
  EXPECT_STREQ(optimizerName(OptimizerKind::GlobalLayout), "Global+Layout");
}

TEST(Pipeline, EquivalenceCheckDetectsCorruption) {
  PipelineOptions O;
  PipelineResult R = runPipeline(streamingKernel(), OptimizerKind::Global, O);
  ASSERT_TRUE(checkEquivalence(streamingKernel(), R, 3));
  // Sabotage the program: flip a shuffle-free load into a wrong lane.
  for (VInst &I : R.Program.Insts) {
    if (I.Kind == VInstKind::LoadPack && I.LaneOps.size() >= 2 &&
        I.LaneOps[0].isArray()) {
      std::swap(I.LaneOps[0], I.LaneOps[1]);
      break;
    }
  }
  std::string Error;
  EXPECT_FALSE(checkEquivalence(streamingKernel(), R, 3, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Pipeline, NoLoopKernel) {
  Kernel K = parse(R"(
    kernel flat { scalar float a, b, c, d;
      a = 1.5;
      b = 2.5;
      c = a * 2.0;
      d = b * 2.0;
    })");
  PipelineOptions O;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, O);
  EXPECT_TRUE(checkEquivalence(K, R, 9));
}

TEST(Pipeline, WiderDatapathVectorizesWider) {
  PipelineOptions Wide;
  Wide.Machine = MachineModel::hypothetical(512);
  PipelineResult R =
      runPipeline(streamingKernel(), OptimizerKind::Global, Wide);
  EXPECT_EQ(R.Preprocessed.Body.size(), 16u);
  unsigned MaxWidth = 0;
  for (const ScheduleItem &I : R.TheSchedule.Items)
    MaxWidth = std::max(MaxWidth, I.width());
  EXPECT_EQ(MaxWidth, 16u);
  EXPECT_TRUE(checkEquivalence(streamingKernel(), R, 10));
}
