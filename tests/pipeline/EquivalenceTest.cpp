//===- tests/pipeline/EquivalenceTest.cpp ---------------------*- C++ -*-===//
//
// The project's central correctness property, swept over the full cross
// product of (benchmark x optimizer x machine): executing the emitted
// vector program must produce bit-identical results to scalar execution
// of the original kernel.
//
//===----------------------------------------------------------------------===//

#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

struct Case {
  std::string WorkloadName;
  OptimizerKind Kind;
  bool AmdMachine;
};

std::string caseName(const testing::TestParamInfo<Case> &Info) {
  std::string Name = Info.param.WorkloadName;
  Name += "_";
  Name += optimizerName(Info.param.Kind);
  Name += Info.param.AmdMachine ? "_amd" : "_intel";
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

class EquivalenceSweep : public testing::TestWithParam<Case> {};

} // namespace

TEST_P(EquivalenceSweep, VectorMatchesScalar) {
  const Case &C = GetParam();
  Workload W = workloadByName(C.WorkloadName);
  PipelineOptions Options;
  Options.Machine = C.AmdMachine ? MachineModel::amdPhenomII()
                                 : MachineModel::intelDunnington();
  PipelineResult R = runPipeline(W.TheKernel, C.Kind, Options);
  std::string Error;
  EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/1234, &Error))
      << Error;
  // The transformation must never predict a slowdown with the guard on.
  EXPECT_GE(R.improvement(), -1e-9);
}

static std::vector<Case> allCases() {
  std::vector<Case> Cases;
  for (const Workload &W : standardWorkloads()) {
    for (OptimizerKind Kind :
         {OptimizerKind::Native, OptimizerKind::LarsenSlp,
          OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      Cases.push_back(Case{W.Name, Kind, false});
      // Sweep the AMD machine only for the holistic schemes to bound
      // test runtime; the baselines are machine-independent transforms.
      if (Kind == OptimizerKind::Global ||
          Kind == OptimizerKind::GlobalLayout)
        Cases.push_back(Case{W.Name, Kind, true});
    }
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, EquivalenceSweep,
                         testing::ValuesIn(allCases()), caseName);

namespace {

class DatapathSweep : public testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(DatapathSweep, HypotheticalWidthsStayCorrect) {
  unsigned Bits = GetParam();
  PipelineOptions Options;
  Options.Machine = MachineModel::hypothetical(Bits);
  // Sweep a representative subset (full 16 x 4 widths would be slow).
  for (const char *Name : {"milc", "ft", "gromacs", "mg", "cg"}) {
    Workload W = workloadByName(Name);
    PipelineResult R =
        runPipeline(W.TheKernel, OptimizerKind::Global, Options);
    std::string Error;
    EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/99, &Error))
        << Name << ": " << Error;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DatapathSweep,
                         testing::Values(256u, 512u, 1024u));
