//===- tests/pipeline/EquivalenceTest.cpp ---------------------*- C++ -*-===//
//
// The project's central correctness property, swept over the full cross
// product of (benchmark x optimizer x machine): executing the emitted
// vector program must produce bit-identical results to scalar execution
// of the original kernel.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

struct Case {
  std::string WorkloadName;
  OptimizerKind Kind;
  bool AmdMachine;
};

std::string caseName(const testing::TestParamInfo<Case> &Info) {
  std::string Name = Info.param.WorkloadName;
  Name += "_";
  Name += optimizerName(Info.param.Kind);
  Name += Info.param.AmdMachine ? "_amd" : "_intel";
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

class EquivalenceSweep : public testing::TestWithParam<Case> {};

} // namespace

TEST_P(EquivalenceSweep, VectorMatchesScalar) {
  const Case &C = GetParam();
  Workload W = workloadByName(C.WorkloadName);
  PipelineOptions Options;
  Options.Machine = C.AmdMachine ? MachineModel::amdPhenomII()
                                 : MachineModel::intelDunnington();
  PipelineResult R = runPipeline(W.TheKernel, C.Kind, Options);
  std::string Error;
  EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/1234, &Error))
      << Error;
  // The transformation must never predict a slowdown with the guard on.
  EXPECT_GE(R.improvement(), -1e-9);
}

static std::vector<Case> allCases() {
  std::vector<Case> Cases;
  for (const Workload &W : standardWorkloads()) {
    for (OptimizerKind Kind :
         {OptimizerKind::Native, OptimizerKind::LarsenSlp,
          OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      Cases.push_back(Case{W.Name, Kind, false});
      // Sweep the AMD machine only for the holistic schemes to bound
      // test runtime; the baselines are machine-independent transforms.
      if (Kind == OptimizerKind::Global ||
          Kind == OptimizerKind::GlobalLayout)
        Cases.push_back(Case{W.Name, Kind, true});
    }
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, EquivalenceSweep,
                         testing::ValuesIn(allCases()), caseName);

namespace {

class DatapathSweep : public testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(DatapathSweep, HypotheticalWidthsStayCorrect) {
  unsigned Bits = GetParam();
  PipelineOptions Options;
  Options.Machine = MachineModel::hypothetical(Bits);
  // Sweep a representative subset (full 16 x 4 widths would be slow).
  for (const char *Name : {"milc", "ft", "gromacs", "mg", "cg"}) {
    Workload W = workloadByName(Name);
    PipelineResult R =
        runPipeline(W.TheKernel, OptimizerKind::Global, Options);
    std::string Error;
    EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/99, &Error))
        << Name << ": " << Error;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DatapathSweep,
                         testing::Values(256u, 512u, 1024u));

// Edge-case kernels through every optimizer: zero-trip loops, aliasing
// array references, and NaN/Inf-producing arithmetic must all survive the
// full pipeline with vector execution identical to the scalar reference.

namespace {

void checkAllOptimizersOn(const std::string &Src) {
  ParseResult P = parseKernel(Src);
  ASSERT_TRUE(P.succeeded()) << P.ErrorMessage;
  const Kernel &K = *P.TheKernel;
  for (OptimizerKind Kind :
       {OptimizerKind::Native, OptimizerKind::LarsenSlp,
        OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
    PipelineResult R = runPipeline(K, Kind, PipelineOptions());
    for (uint64_t Seed : {1u, 77u, 1234u}) {
      std::string Error;
      EXPECT_TRUE(checkEquivalence(K, R, Seed, &Error))
          << optimizerName(Kind) << " seed " << Seed << ": " << Error;
    }
  }
}

} // namespace

TEST(EquivalenceEdgeCases, ZeroTripLoop) {
  checkAllOptimizersOn(R"(
    kernel zerotrip { array float A[8]; scalar float s;
      loop i = 4 .. 4 { A[i] = 2.0; s = A[i] + 1.0; }
    })");
}

TEST(EquivalenceEdgeCases, ZeroTripInnerLoop) {
  checkAllOptimizersOn(R"(
    kernel zeroinner { array float A[64];
      loop i = 0 .. 8 { loop j = 3 .. 3 { A[8*i + j] = 1.0; } }
    })");
}

TEST(EquivalenceEdgeCases, AliasingStoreThenLoad) {
  // The load A[2*i - i] aliases the store A[i] of the same iteration
  // through a different affine form; vectorization must preserve the
  // store -> load order.
  checkAllOptimizersOn(R"(
    kernel aliasload { array float A[16]; array float B[16];
      loop i = 0 .. 16 {
        A[i] = 7.0;
        B[i] = A[2*i - i] + 1.0;
      }
    })");
}

TEST(EquivalenceEdgeCases, AliasingLoadThenStore) {
  checkAllOptimizersOn(R"(
    kernel aliasstore { array float A[16]; array float B[16];
      loop i = 0 .. 16 {
        B[i] = A[i] * 2.0;
        A[i] = 0.5;
      }
    })");
}

TEST(EquivalenceEdgeCases, CrossLaneAliasing) {
  // A[i+1] written this iteration is A[i] of the next unrolled lane: an
  // invalid grouping of the two statements would reorder the accesses.
  checkAllOptimizersOn(R"(
    kernel crosslane { array float A[24]; array float B[16];
      loop i = 0 .. 16 {
        B[i] = A[i] + 1.0;
        A[i + 1] = B[i] * 0.5;
      }
    })");
}

TEST(EquivalenceEdgeCases, NaNPropagation) {
  // (A[i] - A[i]) / (A[i] - A[i]) = 0/0 = NaN for every element, no
  // matter the environment contents. Scalar and vector execution must
  // produce NaN in the same places (Environment::matches treats a NaN
  // pair as agreement).
  checkAllOptimizersOn(R"(
    kernel nanprop { array float A[16] readonly; array float B[16];
      loop i = 0 .. 16 {
        B[i] = (A[i] - A[i]) / (A[i] - A[i]);
      }
    })");
}

TEST(EquivalenceEdgeCases, InfPropagation) {
  // 1 / 0 = +Inf everywhere, and Inf - Inf = NaN downstream.
  checkAllOptimizersOn(R"(
    kernel infprop { array float A[16] readonly; array float B[16];
      array float C[16];
      loop i = 0 .. 16 {
        B[i] = 1.0 / (A[i] - A[i]);
        C[i] = B[i] - B[i];
      }
    })");
}

// Predicated kernels through every optimizer: data-dependent guards,
// all-lanes-false masks, NaN confined to untaken branches, and select
// must all flow through if-conversion into masked vector code that stays
// bit-identical to scalar execution of the guarded source.

TEST(EquivalenceEdgeCases, GuardedCopy) {
  checkAllOptimizersOn(R"(
    kernel guardedcopy { array float src[16] readonly;
      array float msk[16] readonly; array float dst[16];
      loop i = 0 .. 16 {
        if (msk[i] > 0.0) dst[i] = src[i];
      }
    })");
}

TEST(EquivalenceEdgeCases, AllFalseMask) {
  // The comparison is constant-false but deliberately not folded by
  // if-convert, so every optimizer emits a masked store whose mask is
  // zero in every lane. dst must keep its seeded contents.
  checkAllOptimizersOn(R"(
    kernel allfalse { array float src[16] readonly; array float dst[16];
      loop i = 0 .. 16 {
        if (1.0 < 0.5) dst[i] = src[i] * 2.0;
      }
    })");
}

TEST(EquivalenceEdgeCases, NaNInUntakenBranch) {
  // If-converted semantics evaluate the right-hand side on every lane,
  // so the 0/0 NaN is computed — but a false guard suppresses the store,
  // and the NaN must never leak into dst on either execution path.
  checkAllOptimizersOn(R"(
    kernel nanguard { array float A[16] readonly; array float dst[16];
      loop i = 0 .. 16 {
        if (0.5 > 1.0) dst[i] = (A[i] - A[i]) / (A[i] - A[i]);
      }
    })");
}

TEST(EquivalenceEdgeCases, GuardedAccumulateWithSelect) {
  // Mixed shape: a guarded store over a select whose arms both read, on
  // top of an unguarded statement in the same body — the grouping has to
  // keep masked and unmasked packs coherent.
  checkAllOptimizersOn(R"(
    kernel guardsel { array float a[16] readonly; array float b[16] readonly;
      array float m[16] readonly; array float out[16]; array float sum[16];
      loop i = 0 .. 16 {
        sum[i] = a[i] + b[i];
        if (m[i] >= 0.5) out[i] = select(m[i] < 2.0, a[i], b[i]) * sum[i];
      }
    })");
}

TEST(EquivalenceEdgeCases, RangeWorkloadSweepStaysBitIdentical) {
  // The range workload suite exists to exercise the sharpened dependence
  // tier, so demand both halves of the bargain at once: the sharpening
  // actually fires (dep.range-disproved / dep.guard-disjoint nonzero) and
  // the vector program still matches scalar execution bit for bit.
  unsigned WithRangeDisproved = 0;
  for (const Workload &W : rangeWorkloads()) {
    for (bool Amd : {false, true}) {
      PipelineOptions Options;
      Options.Machine = Amd ? MachineModel::amdPhenomII()
                            : MachineModel::intelDunnington();
      PipelineResult R =
          runPipeline(W.TheKernel, OptimizerKind::GlobalLayout, Options);
      std::string Error;
      EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/1234, &Error))
          << W.Name << (Amd ? " amd" : " intel") << ": " << Error;
      EXPECT_GT(R.Stats.get("dep.range-disproved") +
                    R.Stats.get("dep.guard-disjoint"),
                0u)
          << W.Name;
      if (!Amd && R.Stats.get("dep.range-disproved") > 0)
        ++WithRangeDisproved;
    }
  }
  EXPECT_GE(WithRangeDisproved, 2u);
}

TEST(EquivalenceEdgeCases, RangeSharpeningOffStaysBitIdentical) {
  // Ablation: the blunt tier (RangeSharpenDeps=false) must also stay
  // correct — sharpening may only ever remove dependences that were
  // already infeasible, never change results.
  for (const Workload &W : rangeWorkloads()) {
    PipelineOptions Options;
    Options.RangeSharpenDeps = false;
    PipelineResult R =
        runPipeline(W.TheKernel, OptimizerKind::Global, Options);
    std::string Error;
    EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/99, &Error))
        << W.Name << ": " << Error;
    EXPECT_EQ(R.Stats.get("dep.range-disproved"), 0u) << W.Name;
    EXPECT_EQ(R.Stats.get("dep.guard-disjoint"), 0u) << W.Name;
  }
}

TEST(EquivalenceEdgeCases, PredicatedWorkloadSweep) {
  // The predicated workload suite across both machine models.
  for (const Workload &W : predicatedWorkloads()) {
    for (bool Amd : {false, true}) {
      PipelineOptions Options;
      Options.Machine = Amd ? MachineModel::amdPhenomII()
                            : MachineModel::intelDunnington();
      PipelineResult R =
          runPipeline(W.TheKernel, OptimizerKind::GlobalLayout, Options);
      std::string Error;
      EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/1234, &Error))
          << W.Name << (Amd ? " amd" : " intel") << ": " << Error;
    }
  }
}
