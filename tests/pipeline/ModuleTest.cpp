//===- tests/pipeline/ModuleTest.cpp --------------------------*- C++ -*-===//

#include "ir/Parser.h"
#include "slp/Pipeline.h"
#include "vector/VectorPrinter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

const char *TwoKernels = R"(
  kernel scale {
    array float A[64] readonly;
    array float B[64];
    loop i = 0 .. 64 { B[i] = A[i] * 2.0; }
  }
  // A second, independent basic block of the same program.
  kernel shift {
    array float C[64];
    loop i = 0 .. 64 { C[i] = C[i] + 1.0; }
  }
)";

} // namespace

TEST(ModuleParse, MultipleKernels) {
  ModuleParseResult R = parseModule(TwoKernels);
  ASSERT_TRUE(R.succeeded()) << R.ErrorMessage;
  ASSERT_EQ(R.Kernels.size(), 2u);
  EXPECT_EQ(R.Kernels[0].Name, "scale");
  EXPECT_EQ(R.Kernels[1].Name, "shift");
  // Symbol tables are independent per kernel.
  EXPECT_TRUE(R.Kernels[0].findArray("A").has_value());
  EXPECT_FALSE(R.Kernels[1].findArray("A").has_value());
}

TEST(ModuleParse, SingleKernelStillWorks) {
  ModuleParseResult R =
      parseModule("kernel k { scalar float a; a = 1.0; }");
  ASSERT_TRUE(R.succeeded()) << R.ErrorMessage;
  EXPECT_EQ(R.Kernels.size(), 1u);
}

TEST(ModuleParse, EmptyInputIsAnError) {
  ModuleParseResult R = parseModule("  // nothing here\n");
  EXPECT_FALSE(R.succeeded());
}

TEST(ModuleParse, ErrorInSecondKernelReported) {
  ModuleParseResult R = parseModule(R"(
    kernel ok { scalar float a; a = 1.0; }
    kernel bad { scalar float b; b = zzz; }
  )");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.ErrorMessage.find("zzz"), std::string::npos);
}

TEST(ModuleParse, SameKernelNamesAllowedSeparateScopes) {
  // Kernel names are labels; scopes are independent.
  ModuleParseResult R = parseModule(R"(
    kernel k { scalar float a; a = 1.0; }
    kernel k { scalar double a; a = 2.0; }
  )");
  ASSERT_TRUE(R.succeeded()) << R.ErrorMessage;
  EXPECT_EQ(R.Kernels.size(), 2u);
  EXPECT_EQ(R.Kernels[1].Scalars[0].Ty, ScalarType::Float64);
}

TEST(ModulePipeline, AggregatesWeightedImprovement) {
  ModuleParseResult Parsed = parseModule(TwoKernels);
  ASSERT_TRUE(Parsed.succeeded());
  PipelineOptions Options;
  ModulePipelineResult M =
      runPipelineOverModule(Parsed.Kernels, OptimizerKind::Global, Options);
  ASSERT_EQ(M.PerKernel.size(), 2u);
  EXPECT_GT(M.improvement(), 0.0);
  // The aggregate is the cycle-weighted combination, bounded by the
  // per-kernel extremes.
  double Lo = std::min(M.PerKernel[0].improvement(),
                       M.PerKernel[1].improvement());
  double Hi = std::max(M.PerKernel[0].improvement(),
                       M.PerKernel[1].improvement());
  EXPECT_GE(M.improvement(), Lo - 1e-9);
  EXPECT_LE(M.improvement(), Hi + 1e-9);
  // Totals add up.
  EXPECT_DOUBLE_EQ(M.ScalarCycles, M.PerKernel[0].ScalarSim.Cycles +
                                       M.PerKernel[1].ScalarSim.Cycles);
}

TEST(ModulePipeline, PerKernelDecisionsIndependent) {
  // One vectorizable kernel, one hopeless one: the guard reverts only the
  // latter.
  ModuleParseResult Parsed = parseModule(R"(
    kernel good {
      array float A[64] readonly; array float B[64];
      loop i = 0 .. 64 { B[i] = A[i] * 2.0 + 1.0; }
    }
    kernel hopeless {
      array float C[1024]; array float D[1024];
      loop i = 0 .. 64 { D[8*i] = C[8*i] * 2.0; }
    }
  )");
  ASSERT_TRUE(Parsed.succeeded());
  PipelineOptions Options;
  ModulePipelineResult M =
      runPipelineOverModule(Parsed.Kernels, OptimizerKind::Global, Options);
  EXPECT_TRUE(M.PerKernel[0].TransformationApplied);
  EXPECT_FALSE(M.PerKernel[1].TransformationApplied);
  EXPECT_GT(M.improvement(), 0.0);
}

TEST(ModulePipeline, EmptyModule) {
  PipelineOptions Options;
  ModulePipelineResult M =
      runPipelineOverModule({}, OptimizerKind::Global, Options);
  EXPECT_TRUE(M.PerKernel.empty());
  EXPECT_DOUBLE_EQ(M.improvement(), 0.0);
}

namespace {

/// Asserts that two module runs are bit-identical: same per-kernel
/// schedules, vector programs, simulated cycles, decisions, and the same
/// merged statistics.
void expectModulesIdentical(const ModulePipelineResult &A,
                            const ModulePipelineResult &B) {
  ASSERT_EQ(A.PerKernel.size(), B.PerKernel.size());
  EXPECT_DOUBLE_EQ(A.ScalarCycles, B.ScalarCycles);
  EXPECT_DOUBLE_EQ(A.OptimizedCycles, B.OptimizedCycles);
  for (unsigned I = 0; I != A.PerKernel.size(); ++I) {
    const PipelineResult &X = A.PerKernel[I];
    const PipelineResult &Y = B.PerKernel[I];
    EXPECT_EQ(X.TransformationApplied, Y.TransformationApplied) << I;
    EXPECT_EQ(X.LayoutApplied, Y.LayoutApplied) << I;
    EXPECT_DOUBLE_EQ(X.ScalarSim.Cycles, Y.ScalarSim.Cycles) << I;
    EXPECT_DOUBLE_EQ(X.VectorSim.Cycles, Y.VectorSim.Cycles) << I;
    ASSERT_EQ(X.TheSchedule.Items.size(), Y.TheSchedule.Items.size()) << I;
    for (unsigned S = 0; S != X.TheSchedule.Items.size(); ++S)
      EXPECT_EQ(X.TheSchedule.Items[S].Lanes, Y.TheSchedule.Items[S].Lanes)
          << I;
    // The printed program is a faithful rendering of every instruction,
    // so string equality is program equality.
    EXPECT_EQ(printVectorProgram(X.Final, X.Program),
              printVectorProgram(Y.Final, Y.Program))
        << I;
  }
  ASSERT_EQ(A.Stats.counters().size(), B.Stats.counters().size());
  for (unsigned C = 0; C != A.Stats.counters().size(); ++C) {
    EXPECT_EQ(A.Stats.counters()[C].Name, B.Stats.counters()[C].Name);
    EXPECT_EQ(A.Stats.counters()[C].Value, B.Stats.counters()[C].Value)
        << A.Stats.counters()[C].Name;
  }
}

std::vector<Kernel> workloadSuiteModule() {
  std::vector<Kernel> Module;
  for (const Workload &W : standardWorkloads())
    Module.push_back(W.TheKernel.clone());
  return Module;
}

} // namespace

TEST(ModulePipeline, ParallelDriverMatchesSerialOnWorkloadSuite) {
  // The acceptance bar for the worker-pool driver: Threads=4 must be
  // bit-identical to the serial result over the full 16-benchmark suite.
  std::vector<Kernel> Module = workloadSuiteModule();
  PipelineOptions Serial;
  Serial.Threads = 1;
  PipelineOptions Parallel;
  Parallel.Threads = 4;
  for (OptimizerKind Kind :
       {OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
    ModulePipelineResult A = runPipelineOverModule(Module, Kind, Serial);
    ModulePipelineResult B = runPipelineOverModule(Module, Kind, Parallel);
    expectModulesIdentical(A, B);
  }
}

TEST(ModulePipeline, AutoThreadCountMatchesSerial) {
  ModuleParseResult Parsed = parseModule(TwoKernels);
  ASSERT_TRUE(Parsed.succeeded());
  PipelineOptions Serial;
  PipelineOptions Auto;
  Auto.Threads = 0; // one worker per hardware thread
  expectModulesIdentical(
      runPipelineOverModule(Parsed.Kernels, OptimizerKind::GlobalLayout,
                            Serial),
      runPipelineOverModule(Parsed.Kernels, OptimizerKind::GlobalLayout,
                            Auto));
}

TEST(ModulePipeline, MoreThreadsThanKernels) {
  ModuleParseResult Parsed = parseModule(TwoKernels);
  ASSERT_TRUE(Parsed.succeeded());
  PipelineOptions Options;
  Options.Threads = 16; // clamped to the kernel count
  ModulePipelineResult M = runPipelineOverModule(
      Parsed.Kernels, OptimizerKind::Global, Options);
  ASSERT_EQ(M.PerKernel.size(), 2u);
  EXPECT_GT(M.improvement(), 0.0);
}

TEST(ModulePipeline, DedupCompilesDuplicateKernelsOnce) {
  // Two byte-identical kernels (plus a whitespace variant, which
  // canonical printing folds too) and one distinct one: the driver must
  // report two dedup hits and still return four full results.
  ModuleParseResult Parsed = parseModule(R"(
    kernel twin {
      array float A[64] readonly; array float B[64];
      loop i = 0 .. 64 { B[i] = A[i] * 2.0; }
    }
    kernel twin {
      array float A[64] readonly; array float B[64];
      loop i = 0 .. 64 { B[i] = A[i] * 2.0; }
    }
    kernel twin { // reformatted, same canonical printing
      array float A[64] readonly;
      array float B[64];
      loop i = 0 .. 64 {
        B[i] = A[i] * 2.0;
      }
    }
    kernel other {
      array float C[64];
      loop i = 0 .. 64 { C[i] = C[i] + 1.0; }
    }
  )");
  ASSERT_TRUE(Parsed.succeeded()) << Parsed.ErrorMessage;
  PipelineOptions Options;
  ModulePipelineResult M = runPipelineOverModule(
      Parsed.Kernels, OptimizerKind::GlobalLayout, Options);
  ASSERT_EQ(M.PerKernel.size(), 4u);
  EXPECT_EQ(M.Stats.get("driver.dedup-hits"), 2u);
  // Duplicates carry full, identical results.
  EXPECT_EQ(printVectorProgram(M.PerKernel[0].Final, M.PerKernel[0].Program),
            printVectorProgram(M.PerKernel[1].Final, M.PerKernel[1].Program));
  EXPECT_EQ(printVectorProgram(M.PerKernel[0].Final, M.PerKernel[0].Program),
            printVectorProgram(M.PerKernel[2].Final, M.PerKernel[2].Program));
  EXPECT_DOUBLE_EQ(M.PerKernel[0].ScalarSim.Cycles,
                   M.PerKernel[1].ScalarSim.Cycles);
  // Aggregates count every kernel, deduped or not.
  EXPECT_DOUBLE_EQ(M.ScalarCycles, 3 * M.PerKernel[0].ScalarSim.Cycles +
                                       M.PerKernel[3].ScalarSim.Cycles);
}

TEST(ModulePipeline, DedupKeysOnNameAndBody) {
  // Same body under different names must NOT fold (results carry the
  // kernel name); same name with different bodies must not fold either.
  ModuleParseResult Parsed = parseModule(R"(
    kernel a { array float A[64]; loop i = 0 .. 64 { A[i] = A[i] + 1.0; } }
    kernel b { array float A[64]; loop i = 0 .. 64 { A[i] = A[i] + 1.0; } }
    kernel a { array float A[64]; loop i = 0 .. 64 { A[i] = A[i] + 2.0; } }
  )");
  ASSERT_TRUE(Parsed.succeeded()) << Parsed.ErrorMessage;
  PipelineOptions Options;
  ModulePipelineResult M = runPipelineOverModule(
      Parsed.Kernels, OptimizerKind::Global, Options);
  EXPECT_EQ(M.Stats.get("driver.dedup-hits"), 0u);
  EXPECT_EQ(M.PerKernel[0].Final.Name, "a");
  EXPECT_EQ(M.PerKernel[1].Final.Name, "b");
}

TEST(ModulePipeline, DedupParallelMatchesSerial) {
  // A module with duplicates, run serial and parallel: bit-identical, and
  // both report the same dedup count.
  std::vector<Kernel> Module = workloadSuiteModule();
  std::vector<Kernel> Doubled;
  for (const Kernel &K : Module) {
    Doubled.push_back(K.clone());
    Doubled.push_back(K.clone());
  }
  PipelineOptions Serial;
  Serial.Threads = 1;
  PipelineOptions Parallel;
  Parallel.Threads = 4;
  ModulePipelineResult A =
      runPipelineOverModule(Doubled, OptimizerKind::GlobalLayout, Serial);
  ModulePipelineResult B =
      runPipelineOverModule(Doubled, OptimizerKind::GlobalLayout, Parallel);
  EXPECT_EQ(A.Stats.get("driver.dedup-hits"), Module.size());
  expectModulesIdentical(A, B);
}

TEST(ModulePipeline, MergedStatsAndTimingsCoverAllKernels) {
  ModuleParseResult Parsed = parseModule(TwoKernels);
  ASSERT_TRUE(Parsed.succeeded());
  PipelineOptions Options;
  Options.Threads = 2;
  ModulePipelineResult M = runPipelineOverModule(
      Parsed.Kernels, OptimizerKind::Global, Options);
  // Both kernels unrolled by 4 and vectorized into one group each.
  EXPECT_EQ(M.Stats.get("grouping.packs-formed"), 2u);
  // Each canonical pass ran once per kernel.
  for (const TimingEntry &E : M.PassTimings.entries())
    EXPECT_EQ(E.Invocations, 2u) << E.Name;
}
