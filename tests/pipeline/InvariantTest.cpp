//===- tests/pipeline/InvariantTest.cpp -----------------------*- C++ -*-===//
//
// Cross-cutting invariants of the whole pipeline, swept over the standard
// suite and random kernels:
//   * the cost guard never lets any scheme predict a slowdown;
//   * Global+Layout never does worse than Global (the layout stage is
//     adopted only when it helps);
//   * all optimizers compute identical results (not just vs. scalar);
//   * determinism: repeated runs produce identical programs.
//
//===----------------------------------------------------------------------===//

#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

std::vector<OptimizerKind> allKinds() {
  return {OptimizerKind::Scalar, OptimizerKind::Native,
          OptimizerKind::LarsenSlp, OptimizerKind::Global,
          OptimizerKind::GlobalLayout};
}

} // namespace

TEST(Invariants, GuardPreventsSlowdownsOnSuite) {
  PipelineOptions Options;
  for (const Workload &W : standardWorkloads())
    for (OptimizerKind Kind : allKinds()) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
      EXPECT_GE(R.improvement(), -1e-9)
          << W.Name << " / " << optimizerName(Kind);
    }
}

TEST(Invariants, LayoutNeverHurts) {
  PipelineOptions Options;
  for (const Workload &W : standardWorkloads()) {
    double G = runPipeline(W.TheKernel, OptimizerKind::Global, Options)
                   .improvement();
    double L =
        runPipeline(W.TheKernel, OptimizerKind::GlobalLayout, Options)
            .improvement();
    EXPECT_GE(L, G - 1e-9) << W.Name;
  }
}

TEST(Invariants, DeterministicPrograms) {
  PipelineOptions Options;
  for (const char *Name : {"milc", "gromacs", "ft"}) {
    Workload W = workloadByName(Name);
    PipelineResult A = runPipeline(W.TheKernel, OptimizerKind::Global,
                                   Options);
    PipelineResult B = runPipeline(W.TheKernel, OptimizerKind::Global,
                                   Options);
    ASSERT_EQ(A.Program.Insts.size(), B.Program.Insts.size()) << Name;
    for (unsigned I = 0; I != A.Program.Insts.size(); ++I) {
      EXPECT_EQ(A.Program.Insts[I].Kind, B.Program.Insts[I].Kind);
      EXPECT_EQ(A.Program.Insts[I].Dst, B.Program.Insts[I].Dst);
      EXPECT_EQ(A.Program.Insts[I].Mode, B.Program.Insts[I].Mode);
    }
    EXPECT_DOUBLE_EQ(A.VectorSim.Cycles, B.VectorSim.Cycles);
  }
}

namespace {

class CrossOptimizerAgreement : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(CrossOptimizerAgreement, AllSchemesComputeTheSameValues) {
  // Stronger than scalar-vs-vector equivalence: every scheme's program,
  // run on the same inputs, leaves the same final memory.
  Rng R(GetParam() ^ 0x5EED);
  RandomKernelOptions KOpts;
  KOpts.MaxStatements = 8;
  Kernel K = randomKernel(R, KOpts);

  PipelineOptions Options;
  for (OptimizerKind Kind : allKinds()) {
    PipelineResult Res = runPipeline(K, Kind, Options);
    std::string Error;
    EXPECT_TRUE(checkEquivalence(K, Res, GetParam(), &Error))
        << optimizerName(Kind) << ": " << Error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossOptimizerAgreement,
                         testing::Range<uint64_t>(500, 515));

TEST(Invariants, WiderDatapathNeverIncreasesInstructionCount) {
  // Figure 18's monotonicity at kernel granularity: the iterative
  // grouping only merges further at wider datapaths.
  PipelineOptions Narrow, Wide;
  Narrow.Machine = MachineModel::hypothetical(128);
  Wide.Machine = MachineModel::hypothetical(256);
  for (const char *Name : {"lbm", "sp", "mg", "calculix"}) {
    Workload W = workloadByName(Name);
    PipelineResult N = runPipeline(W.TheKernel, OptimizerKind::Global,
                                   Narrow);
    PipelineResult Wd = runPipeline(W.TheKernel, OptimizerKind::Global,
                                    Wide);
    double NarrowRatio = static_cast<double>(N.VectorSim.totalInstrs()) /
                         static_cast<double>(N.ScalarSim.totalInstrs());
    double WideRatio = static_cast<double>(Wd.VectorSim.totalInstrs()) /
                       static_cast<double>(Wd.ScalarSim.totalInstrs());
    EXPECT_LE(WideRatio, NarrowRatio + 1e-9) << Name;
  }
}

TEST(Invariants, CostGuardMatchesSimulatorPrediction) {
  // If TransformationApplied is false the simulated vector time equals
  // scalar time exactly (the emitted program is all-scalar).
  PipelineOptions Options;
  for (const Workload &W : standardWorkloads())
    for (OptimizerKind Kind : allKinds()) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
      if (!R.TransformationApplied)
        EXPECT_DOUBLE_EQ(R.VectorSim.Cycles, R.ScalarSim.Cycles)
            << W.Name << " / " << optimizerName(Kind);
    }
}
