//===- tests/pipeline/PropertyTest.cpp ------------------------*- C++ -*-===//
//
// Property-based testing over randomly generated kernels: for every seed,
// every optimizer must (1) produce a schedule satisfying the paper's four
// validity constraints and (2) compute bit-identical results to scalar
// execution. The generator emits dependent statements, overlapping
// subscripts, temporaries, strided and multi-typed references — the hard
// cases for grouping, scheduling, invalidation, and layout.
//
//===----------------------------------------------------------------------===//

#include "slp/Pipeline.h"
#include "slp/Verifier.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

class RandomKernelSweep : public testing::TestWithParam<uint64_t> {};

void checkAllOptimizers(const Kernel &K, uint64_t Seed) {
  PipelineOptions Options;
  for (OptimizerKind Kind :
       {OptimizerKind::Native, OptimizerKind::LarsenSlp,
        OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
    PipelineResult R = runPipeline(K, Kind, Options);
    DependenceInfo Deps(R.Preprocessed);
    std::vector<std::string> Issues = verifySchedule(
        R.Preprocessed, Deps, R.TheSchedule, Options.Machine.DatapathBits);
    EXPECT_TRUE(Issues.empty())
        << optimizerName(Kind) << " (seed " << Seed
        << "): " << (Issues.empty() ? "" : Issues.front());
    std::string Error;
    EXPECT_TRUE(checkEquivalence(K, R, Seed * 31 + 7, &Error))
        << optimizerName(Kind) << " (seed " << Seed << "): " << Error;
  }
}

} // namespace

TEST_P(RandomKernelSweep, ValidAndEquivalent) {
  uint64_t Seed = GetParam();
  Rng R(Seed);
  RandomKernelOptions Options;
  Kernel K = randomKernel(R, Options);
  checkAllOptimizers(K, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelSweep,
                         testing::Range<uint64_t>(1, 41));

namespace {

class DenseRandomKernelSweep : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DenseRandomKernelSweep, ManyStatementsManyDependences) {
  uint64_t Seed = GetParam();
  Rng R(Seed ^ 0xABCDEF);
  RandomKernelOptions Options;
  Options.MinStatements = 10;
  Options.MaxStatements = 18;
  Options.NumArrays = 2;  // fewer arrays => denser aliasing
  Options.NumScalars = 3; // fewer scalars => more dependences
  Options.TripCount = 8;
  Kernel K = randomKernel(R, Options);
  checkAllOptimizers(K, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseRandomKernelSweep,
                         testing::Range<uint64_t>(1, 21));

namespace {

class WideRandomKernelSweep : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(WideRandomKernelSweep, WideDatapath) {
  uint64_t Seed = GetParam();
  Rng R(Seed ^ 0x123456);
  RandomKernelOptions KOpts;
  KOpts.TripCount = 32; // divisible by up to 32 lanes
  KOpts.AllowDoubles = false;
  Kernel K = randomKernel(R, KOpts);
  PipelineOptions Options;
  Options.Machine = MachineModel::hypothetical(512);
  PipelineResult Res = runPipeline(K, OptimizerKind::Global, Options);
  DependenceInfo Deps(Res.Preprocessed);
  EXPECT_TRUE(
      verifySchedule(Res.Preprocessed, Deps, Res.TheSchedule, 512).empty());
  std::string Error;
  EXPECT_TRUE(checkEquivalence(K, Res, Seed, &Error)) << Error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideRandomKernelSweep,
                         testing::Range<uint64_t>(1, 11));

namespace {

class NestedRandomKernelSweep : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(NestedRandomKernelSweep, TwoLevelNests) {
  uint64_t Seed = GetParam();
  Rng R(Seed ^ 0x777AAA);
  RandomKernelOptions Options;
  Options.NumLoops = 2;
  Options.TripCount = 8;
  Options.MaxStatements = 8;
  Kernel K = randomKernel(R, Options);
  checkAllOptimizers(K, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedRandomKernelSweep,
                         testing::Range<uint64_t>(1, 21));
