//===- tests/machine/CostModelTest.cpp ------------------------*- C++ -*-===//

#include "machine/CostModel.h"

#include "ir/Parser.h"
#include "slp/Scheduling.h"
#include "vector/CodeGen.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

VectorProgram gen(const Kernel &K, std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  CodeGenOptions CG;
  return generateVectorProgram(
      K, S, CG,
      ScalarLayout::defaultLayout(static_cast<unsigned>(K.Scalars.size())));
}

const MachineModel Intel = MachineModel::intelDunnington();

} // namespace

TEST(CostModel, ScalarStatementCost) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0 + A[1];
    })");
  BlockCost C = costScalarBlock(K, Intel);
  // 2 loads + 2 ALU + 1 store.
  EXPECT_EQ(C.MemOps, 3u);
  EXPECT_EQ(C.CoreInstrs, 5u);
  EXPECT_EQ(C.PackUnpackInstrs, 0u);
  EXPECT_DOUBLE_EQ(C.Cycles, 2 * Intel.ScalarLoad + 2 * Intel.ScalarAlu +
                                 Intel.ScalarStore);
}

TEST(CostModel, ScalarDivisionCostsMore) {
  Kernel Mul = parse("kernel k { scalar float a, b; a = b * b; }");
  Kernel Div = parse("kernel k { scalar float a, b; a = b / b; }");
  EXPECT_GT(costScalarBlock(Div, Intel).Cycles,
            costScalarBlock(Mul, Intel).Cycles);
}

TEST(CostModel, ContiguousVectorCheaperThanScalar) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      B[2] = A[2] * 2.0;
      B[3] = A[3] * 2.0;
    })");
  BlockCost Scalar = costScalarBlock(K, Intel);
  BlockCost Vector = costVectorProgram(K, gen(K, {{0, 1, 2, 3}}), Intel);
  EXPECT_LT(Vector.Cycles, Scalar.Cycles);
  EXPECT_LT(Vector.MemOps, Scalar.MemOps);
}

TEST(CostModel, GatherChargesLoadsAndInserts) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      B[0] = A[0] + 1.0;
      B[2] = A[8] + 1.0;
    })");
  BlockCost C = costVectorProgram(K, gen(K, {{0, 1}}), Intel);
  // Gather load: 2 loads + 1 insert; const pack; vop; scatter store:
  // 2 stores + 1 extract.
  EXPECT_EQ(C.MemOps, 4u);
  EXPECT_EQ(C.PackUnpackInstrs, 2u); // 1 insert + 1 extract
  double Expected = 2 * Intel.ScalarLoad + Intel.InsertElem +
                    Intel.ConstMaterialize + Intel.SimdAlu +
                    2 * Intel.ScalarStore + Intel.ExtractElem;
  EXPECT_DOUBLE_EQ(C.Cycles, Expected);
}

TEST(CostModel, UnalignedCostsMoreThanAligned) {
  Kernel Aligned = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      B[0] = A[0] + 1.0;
      B[1] = A[1] + 1.0;
      B[2] = A[2] + 1.0;
      B[3] = A[3] + 1.0;
    })");
  Kernel Unaligned = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      B[0] = A[1] + 1.0;
      B[1] = A[2] + 1.0;
      B[2] = A[3] + 1.0;
      B[3] = A[4] + 1.0;
    })");
  EXPECT_LT(
      costVectorProgram(Aligned, gen(Aligned, {{0, 1, 2, 3}}), Intel).Cycles,
      costVectorProgram(Unaligned, gen(Unaligned, {{0, 1, 2, 3}}), Intel)
          .Cycles);
}

TEST(CostModel, ReuseEliminatesLoadCost) {
  Kernel Reuse = parse(R"(
    kernel k { array float A[8] readonly; array float B[8]; array float C[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      C[0] = A[0] * 2.0;
      C[1] = A[1] * 2.0;
    })");
  BlockCost Two = costVectorProgram(Reuse, gen(Reuse, {{0, 1}, {2, 3}}),
                                    Intel);
  // Second group reuses <A[0],A[1]> and the <2,2> splat: only one extra
  // vop and one extra store.
  BlockCost One = costVectorProgram(Reuse, gen(Reuse, {{0, 1}, {2}, {3}}),
                                    Intel);
  EXPECT_LT(Two.Cycles, One.Cycles);
}

TEST(CostModel, AmdPackingCostsHigher) {
  MachineModel Amd = MachineModel::amdPhenomII();
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      B[0] = A[0] + A[8];
      B[2] = A[2] + A[10];
    })");
  VectorProgram P = gen(K, {{0, 1}});
  BlockCost OnIntel = costVectorProgram(K, P, Intel);
  BlockCost OnAmd = costVectorProgram(K, P, Amd);
  EXPECT_GT(OnAmd.Cycles, OnIntel.Cycles);
  // Same instruction mix, different prices.
  EXPECT_EQ(OnAmd.PackUnpackInstrs, OnIntel.PackUnpackInstrs);
}

TEST(CostModel, ScalarExecInsideVectorProgram) {
  Kernel K = parse("kernel k { scalar float a, b; a = b * 2.0; }");
  Schedule S;
  S.Items.push_back(ScheduleItem{{0}});
  CodeGenOptions CG;
  VectorProgram P = generateVectorProgram(
      K, S, CG, ScalarLayout::defaultLayout(2));
  BlockCost Vec = costVectorProgram(K, P, Intel);
  BlockCost Sca = costScalarBlock(K, Intel);
  EXPECT_DOUBLE_EQ(Vec.Cycles, Sca.Cycles);
  EXPECT_EQ(Vec.totalInstrs(), Sca.totalInstrs());
}

TEST(CostModel, ShuffleCounted) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = b + 1.0;
      d = a + 1.0;
    })");
  BlockCost C = costVectorProgram(K, gen(K, {{0, 1}, {2, 3}}), Intel);
  EXPECT_GE(C.PackUnpackInstrs, 1u); // the permuted reuse shuffle
}
