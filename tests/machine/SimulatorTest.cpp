//===- tests/machine/SimulatorTest.cpp ------------------------*- C++ -*-===//

#include "machine/Multicore.h"
#include "machine/Simulator.h"

#include "ir/Parser.h"
#include "slp/Scheduling.h"
#include "vector/CodeGen.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

const MachineModel Intel = MachineModel::intelDunnington();

} // namespace

TEST(Simulator, UniqueBytesCountsDistinctRefsOnce) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] + A[0] + A[1];
      B[0] = B[0] * 2.0;
    })");
  // Distinct refs: A[0], A[1], B[0] -> 12 bytes (float).
  EXPECT_DOUBLE_EQ(uniqueBytesPerIteration(K), 12.0);
}

TEST(Simulator, UniqueBytesHonorsElementSize) {
  Kernel K = parse(R"(
    kernel k { array double D[8]; D[0] = 1.0; })");
  EXPECT_DOUBLE_EQ(uniqueBytesPerIteration(K), 8.0);
}

TEST(Simulator, FootprintSumsArrays) {
  Kernel K = parse(R"(
    kernel k { array float A[100]; array double D[50]; A[0] = 1.0; })");
  EXPECT_DOUBLE_EQ(dataFootprintBytes(K), 100 * 4.0 + 50 * 8.0);
  EXPECT_DOUBLE_EQ(dataFootprintBytes(K, 64), 800.0 + 64.0);
}

TEST(Simulator, CachePressureTiers) {
  EXPECT_DOUBLE_EQ(cachePressureFactor(Intel, 1024.0), 1.0);
  EXPECT_DOUBLE_EQ(
      cachePressureFactor(Intel, (Intel.L2TotalKB + 1) * 1024.0), 1.25);
  EXPECT_DOUBLE_EQ(
      cachePressureFactor(Intel, (Intel.L3TotalKB + 1) * 1024.0), 1.6);
}

TEST(Simulator, ScalarSimScalesWithTripCount) {
  Kernel Small = parse(R"(
    kernel k { array float A[64]; loop i = 0 .. 32 { A[i] = 1.0; } })");
  Kernel Large = parse(R"(
    kernel k { array float A[64]; loop i = 0 .. 64 { A[i] = 1.0; } })");
  KernelSimResult S = simulateScalarKernel(Small, Intel);
  KernelSimResult L = simulateScalarKernel(Large, Intel);
  EXPECT_DOUBLE_EQ(L.ComputeCycles, 2 * S.ComputeCycles);
  EXPECT_EQ(L.MemOps, 2 * S.MemOps);
}

TEST(Simulator, TrafficTermIdenticalForScalarAndVector) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      loop i = 0 .. 8 {
        B[4*i]   = A[4*i] + 1.0;
        B[4*i+1] = A[4*i+1] + 1.0;
        B[4*i+2] = A[4*i+2] + 1.0;
        B[4*i+3] = A[4*i+3] + 1.0;
      }
    })");
  Schedule S;
  S.Items.push_back(ScheduleItem{{0, 1, 2, 3}});
  CodeGenOptions CG;
  VectorProgram P =
      generateVectorProgram(K, S, CG, ScalarLayout::defaultLayout(0));
  KernelSimResult Sc = simulateScalarKernel(K, Intel);
  KernelSimResult Ve = simulateVectorKernel(K, P, Intel);
  EXPECT_DOUBLE_EQ(Sc.TrafficCycles, Ve.TrafficCycles);
  EXPECT_LT(Ve.ComputeCycles, Sc.ComputeCycles);
  EXPECT_GT(timeReduction(Sc, Ve), 0.0);
}

TEST(Simulator, ReplicationChargedAndAmortized) {
  Kernel K = parse(R"(
    kernel k { array float A[16]; loop i = 0 .. 16 { A[i] = 1.0; } })");
  Schedule S;
  for (unsigned I = 0; I != 1; ++I)
    S.Items.push_back(ScheduleItem{{0}});
  CodeGenOptions CG;
  VectorProgram P =
      generateVectorProgram(K, S, CG, ScalarLayout::defaultLayout(0));
  KernelSimResult NoRepl = simulateVectorKernel(K, P, Intel, 0);
  KernelSimResult Repl =
      simulateVectorKernel(K, P, Intel, /*ReplicatedBytes=*/4096,
                           /*KernelInvocations=*/1);
  KernelSimResult ReplAmortized =
      simulateVectorKernel(K, P, Intel, 4096, /*KernelInvocations=*/100);
  EXPECT_GT(Repl.OneTimeCycles, 0.0);
  EXPECT_DOUBLE_EQ(Repl.OneTimeCycles / 100.0,
                   ReplAmortized.OneTimeCycles);
  EXPECT_GT(Repl.Cycles, NoRepl.Cycles - 1e-9);
}

TEST(Simulator, TimeReductionSigns) {
  KernelSimResult Base, Better, Worse;
  Base.Cycles = 100;
  Better.Cycles = 80;
  Worse.Cycles = 120;
  EXPECT_DOUBLE_EQ(timeReduction(Base, Better), 0.2);
  EXPECT_LT(timeReduction(Base, Worse), 0.0);
}

TEST(Multicore, ContentionGrowsRelativeAdvantage) {
  // Vector issues fewer memory transactions; its relative improvement
  // should grow (slightly) with the core count — the Figure 21 mechanism.
  KernelSimResult Scalar, Vector;
  Scalar.ComputeCycles = 1000;
  Scalar.TrafficCycles = 500;
  Scalar.MemOps = 1000;
  Scalar.Cycles = 1500;
  Vector.ComputeCycles = 700;
  Vector.TrafficCycles = 500;
  Vector.MemOps = 300;
  Vector.Cycles = 1200;
  MulticoreParams P{0.02, 0.002};
  double R1 = multicoreTimeReduction(Scalar, Vector, Intel, 1, P);
  double R6 = multicoreTimeReduction(Scalar, Vector, Intel, 6, P);
  double R12 = multicoreTimeReduction(Scalar, Vector, Intel, 12, P);
  EXPECT_GT(R6, R1);
  EXPECT_GT(R12, R6);
  EXPECT_LT(R12, R1 + 0.15); // "slightly", not wildly
}

TEST(Multicore, SingleCoreMatchesPlainRatio) {
  KernelSimResult Scalar, Vector;
  Scalar.ComputeCycles = 900;
  Scalar.TrafficCycles = 100;
  Scalar.Cycles = 1000;
  Vector.ComputeCycles = 700;
  Vector.TrafficCycles = 100;
  Vector.Cycles = 800;
  MulticoreParams P{0.05, 0.001};
  double R = multicoreTimeReduction(Scalar, Vector, Intel, 1, P);
  EXPECT_NEAR(R, 0.2, 1e-9);
}

TEST(Multicore, MoreCoresReduceAbsoluteTime) {
  KernelSimResult R;
  R.ComputeCycles = 1000;
  R.TrafficCycles = 200;
  R.MemOps = 100;
  MulticoreParams P{0.05, 0.001};
  double T1 = multicoreCycles(R, Intel, 1, P);
  double T4 = multicoreCycles(R, Intel, 4, P);
  double T12 = multicoreCycles(R, Intel, 12, P);
  EXPECT_LT(T4, T1);
  EXPECT_LT(T12, T4);
}

TEST(MachineModels, TableParametersEncoded) {
  MachineModel I = MachineModel::intelDunnington();
  EXPECT_EQ(I.NumCores, 12u);
  EXPECT_EQ(I.L1DataKB, 32u);
  EXPECT_EQ(I.DatapathBits, 128u);
  MachineModel A = MachineModel::amdPhenomII();
  EXPECT_EQ(A.NumCores, 4u);
  EXPECT_EQ(A.L1DataKB, 64u);
  // The paper attributes AMD's lower savings to pricier packing.
  EXPECT_GT(A.InsertElem, I.InsertElem);
  EXPECT_GT(A.Shuffle, I.Shuffle);
  MachineModel H = MachineModel::hypothetical(512);
  EXPECT_EQ(H.DatapathBits, 512u);
}
