//===- tests/ir/InterpreterTest.cpp ---------------------------*- C++ -*-===//

#include "ir/Interpreter.h"

#include "ir/Builder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

} // namespace

TEST(Interpreter, StraightLineArithmetic) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 2.0 + 3.0 * 4.0;
      b = a - 10.0;
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 14.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(1), 4.0);
}

TEST(Interpreter, MinMaxNegSqrtAbs) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = min(3.0, 2.0) + max(3.0, 2.0);
      b = -a;
      c = abs(b);
      d = sqrt(16.0);
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 5.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(1), -5.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(2), 5.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(3), 4.0);
}

TEST(Interpreter, LoopExecutesTripCountTimes) {
  Kernel K = parse(R"(
    kernel k { array float A[32];
      loop i = 0 .. 32 { A[i] = 2.0; }
    })");
  Environment Env(K, 1);
  ScalarExecStats Stats = runKernelScalar(K, Env);
  EXPECT_EQ(Stats.ArrayStores, 32u);
  for (double V : Env.arrayBuffer(0))
    EXPECT_DOUBLE_EQ(V, 2.0);
}

TEST(Interpreter, SteppedLoop) {
  Kernel K = parse(R"(
    kernel k { array float A[32];
      loop i = 0 .. 32 step 4 { A[i] = 1.0; }
    })");
  Environment Env(K, 99);
  Environment Orig = Env;
  runKernelScalar(K, Env);
  for (unsigned I = 0; I != 32; ++I) {
    if (I % 4 == 0)
      EXPECT_DOUBLE_EQ(Env.arrayBuffer(0)[I], 1.0);
    else
      EXPECT_DOUBLE_EQ(Env.arrayBuffer(0)[I], Orig.arrayBuffer(0)[I]);
  }
}

TEST(Interpreter, NestedLoopsRowMajor) {
  Kernel K = parse(R"(
    kernel k { array float A[4][4];
      loop i = 0 .. 4 { loop j = 0 .. 4 {
        A[i][j] = 1.0;
        A[i][j] = A[i][j] + 1.0;
      } }
    })");
  Environment Env(K, 1);
  ScalarExecStats Stats = runKernelScalar(K, Env);
  EXPECT_EQ(Stats.ArrayStores, 32u);
  EXPECT_EQ(Stats.ArrayLoads, 16u);
  for (double V : Env.arrayBuffer(0))
    EXPECT_DOUBLE_EQ(V, 2.0);
}

TEST(Interpreter, ZeroTripLoopRunsNothing) {
  Kernel K = parse(R"(
    kernel k { array float A[8]; scalar float s;
      loop i = 4 .. 4 { A[i] = 0.0; s = 1.0; }
    })");
  Environment Env(K, 3);
  Environment Orig = Env;
  runKernelScalar(K, Env);
  EXPECT_TRUE(Env.matches(Orig, 1, 1));
}

TEST(Interpreter, EmptyNestRunsBodyOnce) {
  Kernel K = parse("kernel k { scalar float a; a = 5.0; }");
  Environment Env(K, 1);
  ScalarExecStats Stats = runKernelScalar(K, Env);
  EXPECT_EQ(Stats.AluOps, 0u);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 5.0);
}

TEST(Interpreter, ScalarDependenceChainWithinIteration) {
  Kernel K = parse(R"(
    kernel k { scalar float t; array float A[16] readonly; array float B[16];
      loop i = 0 .. 16 {
        t = A[i] * 2.0;
        B[i] = t + 1.0;
      }
    })");
  Environment Env(K, 17);
  Environment Ref = Env;
  runKernelScalar(K, Env);
  for (unsigned I = 0; I != 16; ++I)
    EXPECT_DOUBLE_EQ(Env.arrayBuffer(1)[I],
                     Ref.arrayBuffer(0)[I] * 2.0 + 1.0);
}

TEST(Interpreter, EnvironmentDeterminism) {
  Kernel K = parse("kernel k { scalar float a; array float A[64]; a = 1.0; }");
  Environment E1(K, 42), E2(K, 42), E3(K, 43);
  EXPECT_TRUE(E1.matches(E2, 1, 1));
  EXPECT_FALSE(E1.matches(E3, 1, 1));
}

TEST(Interpreter, MatchesTreatsNaNAsEqual) {
  // NaN != NaN in IEEE comparison, but two executions that both computed
  // NaN in the same location DID agree — matches() must not flag them.
  Kernel K = parse("kernel k { scalar float a; array float A[4]; a = 1.0; }");
  Environment E1(K, 7), E2(K, 7);
  double NaN = std::numeric_limits<double>::quiet_NaN();
  E1.setScalarValue(0, NaN);
  E2.setScalarValue(0, NaN);
  E1.arrayBuffer(0)[2] = NaN;
  E2.arrayBuffer(0)[2] = NaN;
  EXPECT_TRUE(E1.matches(E2, 1, 1));
  // NaN against a number is still a mismatch, in either direction.
  E2.setScalarValue(0, 1.0);
  EXPECT_FALSE(E1.matches(E2, 1, 1));
  EXPECT_FALSE(E2.matches(E1, 1, 1));
  E2.setScalarValue(0, NaN);
  E1.arrayBuffer(0)[2] = 0.0;
  EXPECT_FALSE(E1.matches(E2, 1, 1));
}

TEST(Interpreter, MatchesDistinguishesInfSigns) {
  Kernel K = parse("kernel k { scalar float a; a = 1.0; }");
  Environment E1(K, 7), E2(K, 7);
  double Inf = std::numeric_limits<double>::infinity();
  E1.setScalarValue(0, Inf);
  E2.setScalarValue(0, Inf);
  EXPECT_TRUE(E1.matches(E2, 1, 0));
  E2.setScalarValue(0, -Inf);
  EXPECT_FALSE(E1.matches(E2, 1, 0));
}

TEST(Interpreter, AliasingLoadSeesEarlierStoreSameIteration) {
  // A[i] is written by statement 0 and read back by statement 1 through a
  // syntactically different subscript (2*i - i): the interpreter must
  // execute statements in order against the same storage.
  Kernel K = parse(R"(
    kernel k { array float A[16]; array float B[16];
      loop i = 0 .. 16 {
        A[i] = 7.0;
        B[i] = A[2*i - i] + 1.0;
      }
    })");
  Environment Env(K, 11);
  runKernelScalar(K, Env);
  for (unsigned I = 0; I != 16; ++I) {
    EXPECT_DOUBLE_EQ(Env.arrayBuffer(0)[I], 7.0);
    EXPECT_DOUBLE_EQ(Env.arrayBuffer(1)[I], 8.0);
  }
}

TEST(Interpreter, AliasingStoreAfterLoadKeepsOldValue) {
  // Statement 0 reads A[i] before statement 1 overwrites it: B must
  // capture the pre-store value.
  Kernel K = parse(R"(
    kernel k { array float A[8]; array float B[8];
      loop i = 0 .. 8 {
        B[i] = A[i] * 2.0;
        A[i] = 0.0;
      }
    })");
  Environment Env(K, 23);
  Environment Ref = Env;
  runKernelScalar(K, Env);
  for (unsigned I = 0; I != 8; ++I) {
    EXPECT_DOUBLE_EQ(Env.arrayBuffer(1)[I], Ref.arrayBuffer(0)[I] * 2.0);
    EXPECT_DOUBLE_EQ(Env.arrayBuffer(0)[I], 0.0);
  }
}

TEST(Interpreter, NaNAndInfArithmetic) {
  // 0/0 -> NaN, 1/0 -> +Inf, Inf - Inf -> NaN: IEEE special values must
  // flow through the evaluator untouched.
  Kernel K = parse(R"(
    kernel k { scalar float zero, nan, inf, diff;
      zero = 0.0;
      nan = zero / zero;
      inf = 1.0 / zero;
      diff = inf - inf;
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_TRUE(std::isnan(Env.scalarValue(1)));
  EXPECT_TRUE(std::isinf(Env.scalarValue(2)));
  EXPECT_GT(Env.scalarValue(2), 0.0);
  EXPECT_TRUE(std::isnan(Env.scalarValue(3)));
}

TEST(Interpreter, StatsCountLoadsAndOps) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      loop i = 0 .. 8 { B[i] = A[i] * A[i] + 1.0; }
    })");
  Environment Env(K, 1);
  ScalarExecStats Stats = runKernelScalar(K, Env);
  EXPECT_EQ(Stats.ArrayLoads, 16u);
  EXPECT_EQ(Stats.ArrayStores, 8u);
  EXPECT_EQ(Stats.AluOps, 16u);
}

TEST(Interpreter, FlattenArrayRefRowMajor) {
  ArraySymbol A{"A", ScalarType::Float32, {4, 8}, false};
  std::vector<AffineExpr> Subs{AffineExpr::term(0, 1),
                               AffineExpr::term(1, 1, 2)};
  AffineExpr Flat = flattenArrayRef(A, Subs);
  // A[i][j+2] in a 4x8 array flattens to 8i + j + 2.
  EXPECT_EQ(Flat.coeff(0), 8);
  EXPECT_EQ(Flat.coeff(1), 1);
  EXPECT_EQ(Flat.constant(), 2);
}

TEST(Interpreter, ForEachIterationOrder) {
  KernelBuilder B("k");
  B.loop("i", 0, 2);
  B.loop("j", 0, 3);
  Kernel K = B.take();
  std::vector<std::vector<int64_t>> Seen;
  forEachIteration(K, [&Seen](const std::vector<int64_t> &I) {
    Seen.push_back(I);
  });
  ASSERT_EQ(Seen.size(), 6u);
  EXPECT_EQ(Seen.front(), (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(Seen[1], (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(Seen.back(), (std::vector<int64_t>{1, 2}));
}

// Predication: if-converted semantics — the guard and the right-hand side
// are always evaluated; a false guard only suppresses the store.

TEST(Interpreter, GuardSuppressesStoreOnly) {
  Kernel K = parse(R"(
    kernel g {
      array float m[8] readonly;
      array float src[8] readonly;
      array float dst[8];
      loop i = 0 .. 8 {
        if (m[i] > 0.0) dst[i] = src[i];
      }
    })");
  Environment Env(K, 11);
  // Pin the mask: even lanes taken, odd lanes suppressed.
  for (unsigned I = 0; I != 8; ++I)
    Env.arrayBuffer(0)[I] = (I % 2 == 0) ? 1.0 : -1.0;
  Environment Orig = Env;
  ScalarExecStats Stats = runKernelScalar(K, Env);
  for (unsigned I = 0; I != 8; ++I) {
    if (I % 2 == 0)
      EXPECT_DOUBLE_EQ(Env.arrayBuffer(2)[I], Orig.arrayBuffer(1)[I]);
    else
      EXPECT_DOUBLE_EQ(Env.arrayBuffer(2)[I], Orig.arrayBuffer(2)[I]);
  }
  // Suppressed stores still count as attempted stores, so the compiled
  // engines' static per-iteration accounting agrees with the reference.
  EXPECT_EQ(Stats.ArrayStores, 8u);
}

TEST(Interpreter, AllFalseGuardLeavesEnvironmentUntouched) {
  Kernel K = parse(R"(
    kernel af {
      array float src[8] readonly;
      array float dst[8];
      loop i = 0 .. 8 {
        if (1.0 < 0.5) dst[i] = src[i] * 2.0;
      }
    })");
  Environment Env(K, 5);
  Environment Orig = Env;
  ScalarExecStats Stats = runKernelScalar(K, Env);
  EXPECT_TRUE(Env.matches(Orig, 0, 2));
  EXPECT_EQ(Stats.ArrayStores, 8u);
}

TEST(Interpreter, ZeroTripLoopSkipsGuardedBody) {
  Kernel K = parse(R"(
    kernel zt {
      array float m[8] readonly;
      array float dst[8];
      loop i = 6 .. 6 {
        if (m[i] != 0.0) dst[i] = 1.0;
      }
    })");
  Environment Env(K, 13);
  Environment Orig = Env;
  ScalarExecStats Stats = runKernelScalar(K, Env);
  EXPECT_TRUE(Env.matches(Orig, 0, 2));
  EXPECT_EQ(Stats.ArrayStores, 0u);
}

TEST(Interpreter, NaNInUntakenBranchDoesNotLeak) {
  // The rhs is always evaluated (if-converted semantics), so sqrt(-1)
  // produces a NaN on every iteration — but the false guard suppresses
  // the store, and the NaN must never reach dst.
  Kernel K = parse(R"(
    kernel nan {
      array float dst[4];
      loop i = 0 .. 4 {
        if (0.5 > 1.0) dst[i] = sqrt(0.0 - 1.0);
      }
    })");
  Environment Env(K, 23);
  Environment Orig = Env;
  runKernelScalar(K, Env);
  for (unsigned I = 0; I != 4; ++I) {
    EXPECT_FALSE(std::isnan(Env.arrayBuffer(0)[I]));
    EXPECT_DOUBLE_EQ(Env.arrayBuffer(0)[I], Orig.arrayBuffer(0)[I]);
  }
}

TEST(Interpreter, SelectEvaluatesBothArmsChoosesByCondition) {
  Kernel K = parse(R"(
    kernel sel { scalar float a, b;
      a = select(2.0 > 1.0, 3.0, sqrt(0.0 - 1.0));
      b = select(2.0 < 1.0, 3.0, 4.0);
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  // NaN in the untaken arm does not propagate through select.
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 3.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(1), 4.0);
}

TEST(Interpreter, ComparisonsYieldOneOrZero) {
  Kernel K = parse(R"(
    kernel cmp { scalar float a, b, c, d;
      a = select(3.0 >= 3.0, 1.0, 0.0) + select(3.0 != 3.0, 1.0, 0.0);
      b = select(2.0 <= 1.0, 1.0, 0.0);
      c = select(1.0 == 1.0, 5.0, 6.0);
      d = select(0.0 < 1.0, 7.0, 8.0);
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 1.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(1), 0.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(2), 5.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(3), 7.0);
}

TEST(Interpreter, GuardedScalarStoreKeepsOldValue) {
  Kernel K = parse(R"(
    kernel gs { scalar float s;
      s = 2.0;
      if (s < 0.0) s = 9.0;
      if (s > 0.0) s = s + 1.0;
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 3.0);
}
