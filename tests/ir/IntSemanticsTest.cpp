//===- tests/ir/IntSemanticsTest.cpp --------------------------*- C++ -*-===//
//
// Integer-typed locations truncate toward zero on store (a float-to-int
// conversion at the assignment); the scalar and vector paths share the
// same store helper, so equivalence tests keep both honest.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "ir/Parser.h"
#include "slp/Pipeline.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

} // namespace

TEST(IntSemantics, ScalarStoreTruncatesTowardZero) {
  Kernel K = parse(R"(
    kernel k { scalar int n, m;
      n = 7.0 / 2.0;
      m = 0.0 - 7.0 / 2.0;
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 3.0);
  EXPECT_DOUBLE_EQ(Env.scalarValue(1), -3.0);
}

TEST(IntSemantics, ArrayStoreTruncates) {
  Kernel K = parse(R"(
    kernel k { array int A[4]; array long B[4];
      A[0] = 2.75;
      B[1] = -2.75;
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.arrayBuffer(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(Env.arrayBuffer(1)[1], -2.0);
}

TEST(IntSemantics, FloatStoresDoNotTruncate) {
  Kernel K = parse(R"(
    kernel k { scalar float f; array double D[2];
      f = 2.75;
      D[0] = -2.75;
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 2.75);
  EXPECT_DOUBLE_EQ(Env.arrayBuffer(0)[0], -2.75);
}

TEST(IntSemantics, IntermediateValuesStayExact) {
  // Truncation happens only at the store, not mid-expression.
  Kernel K = parse(R"(
    kernel k { scalar int n;
      n = (7.0 / 2.0) * 2.0;
    })");
  Environment Env(K, 1);
  runKernelScalar(K, Env);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), 7.0); // 3.5 * 2, then trunc
}

TEST(IntSemantics, EnvironmentInitIsIntegral) {
  Kernel K = parse(R"(
    kernel k { scalar int n; array long B[64]; array float F[8];
      n = 1.0;
    })");
  Environment Env(K, 77);
  EXPECT_DOUBLE_EQ(Env.scalarValue(0), std::trunc(Env.scalarValue(0)));
  for (double V : Env.arrayBuffer(0))
    EXPECT_DOUBLE_EQ(V, std::trunc(V));
}

TEST(IntSemantics, VectorizedIntKernelMatchesScalar) {
  Kernel K = parse(R"(
    kernel k { array int A[64] readonly; array int B[64];
      loop i = 0 .. 64 {
        B[i] = A[i] * 3.0 / 2.0;
      }
    })");
  PipelineOptions Options;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, Options);
  // Int32 lanes: four per 128-bit vector.
  EXPECT_EQ(R.Preprocessed.Body.size(), 4u);
  std::string Error;
  EXPECT_TRUE(checkEquivalence(K, R, 55, &Error)) << Error;
}

TEST(IntSemantics, Int64UsesTwoLanes) {
  Kernel K = parse(R"(
    kernel k { array long A[64] readonly; array long B[64];
      loop i = 0 .. 64 {
        B[i] = A[i] + 1.0;
      }
    })");
  PipelineOptions Options;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, Options);
  EXPECT_EQ(R.Preprocessed.Body.size(), 2u);
  EXPECT_TRUE(checkEquivalence(K, R, 56));
}
