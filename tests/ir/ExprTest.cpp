//===- tests/ir/ExprTest.cpp ----------------------------------*- C++ -*-===//

#include "ir/Builder.h"
#include "ir/Statement.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

KernelBuilder makeBuilder() {
  KernelBuilder B("t");
  B.array("A", ScalarType::Float32, {64});
  B.array("Bb", ScalarType::Float32, {64});
  B.scalar("x", ScalarType::Float32);
  B.scalar("y", ScalarType::Float32);
  return B;
}

} // namespace

TEST(Expr, LeafAccessors) {
  KernelBuilder B = makeBuilder();
  ExprPtr E = B.c(2.5);
  EXPECT_TRUE(E->isLeaf());
  EXPECT_DOUBLE_EQ(E->leaf().constantValue(), 2.5);
  EXPECT_EQ(E->numOps(), 0u);
}

TEST(Expr, TreeStructure) {
  KernelBuilder B = makeBuilder();
  ExprPtr E = B.add(B.mul(B.scalarRef(0), B.c(2.0)),
                    B.load(0, {B.aff(3)}));
  EXPECT_FALSE(E->isLeaf());
  EXPECT_EQ(E->opcode(), OpCode::Add);
  EXPECT_EQ(E->numChildren(), 2u);
  EXPECT_EQ(E->numOps(), 2u);
}

TEST(Expr, CloneIsDeepAndEqual) {
  KernelBuilder B = makeBuilder();
  ExprPtr E = B.sub(B.load(0, {B.aff(1)}), B.neg(B.scalarRef(1)));
  ExprPtr C = E->clone();
  EXPECT_TRUE(E->equals(*C));
  // Mutating the clone must not affect the original.
  C->child(0).leaf() = Operand::makeConstant(9);
  EXPECT_FALSE(E->equals(*C));
}

TEST(Expr, LeavesInPreOrder) {
  KernelBuilder B = makeBuilder();
  ExprPtr E = B.add(B.mul(B.scalarRef(0), B.scalarRef(1)),
                    B.load(1, {B.aff(0)}));
  std::vector<const Operand *> Leaves = E->leaves();
  ASSERT_EQ(Leaves.size(), 3u);
  EXPECT_EQ(Leaves[0]->symbol(), 0u);
  EXPECT_EQ(Leaves[1]->symbol(), 1u);
  EXPECT_TRUE(Leaves[2]->isArray());
}

TEST(Expr, ShapeSignatureSeparatesShapes) {
  KernelBuilder B = makeBuilder();
  ExprPtr Add = B.add(B.scalarRef(0), B.scalarRef(1));
  ExprPtr Sub = B.sub(B.scalarRef(0), B.scalarRef(1));
  ExprPtr AddArr = B.add(B.scalarRef(0), B.load(0, {B.aff(0)}));
  EXPECT_NE(Add->shapeSignature(), Sub->shapeSignature());
  EXPECT_NE(Add->shapeSignature(), AddArr->shapeSignature());
}

TEST(Expr, ShapeSignatureIgnoresWhichSymbol) {
  KernelBuilder B = makeBuilder();
  ExprPtr E1 = B.add(B.scalarRef(0), B.load(0, {B.aff(0)}));
  ExprPtr E2 = B.add(B.scalarRef(1), B.load(1, {B.aff(5)}));
  EXPECT_EQ(E1->shapeSignature(), E2->shapeSignature());
}

TEST(Statement, OperandPositionsStartWithLhs) {
  KernelBuilder B = makeBuilder();
  Statement S(B.arrayRef(0, {B.aff(1)}),
              B.add(B.scalarRef(0), B.scalarRef(1)));
  std::vector<const Operand *> Pos = S.operandPositions();
  ASSERT_EQ(Pos.size(), 3u);
  EXPECT_TRUE(Pos[0]->isArray());
  EXPECT_TRUE(Pos[1]->isScalar());
}

TEST(Statement, IsomorphismSignatureDistinguishesLhsKind) {
  KernelBuilder B = makeBuilder();
  Statement SA(B.arrayRef(0, {B.aff(0)}), B.c(1.0));
  Statement SS(B.scalarOp(0), B.c(1.0));
  EXPECT_NE(SA.isomorphismSignature(), SS.isomorphismSignature());
}

TEST(Statement, CopyIsDeep) {
  KernelBuilder B = makeBuilder();
  Statement S(B.scalarOp(0), B.mul(B.scalarRef(1), B.c(3.0)));
  Statement C = S;
  C.rhs().child(1).leaf() = Operand::makeConstant(4.0);
  EXPECT_DOUBLE_EQ(S.rhs().child(1).leaf().constantValue(), 3.0);
}

TEST(Operand, EqualityAndKeys) {
  Operand C1 = Operand::makeConstant(1.5);
  Operand C2 = Operand::makeConstant(1.5);
  Operand C3 = Operand::makeConstant(2.5);
  EXPECT_EQ(C1, C2);
  EXPECT_NE(C1, C3);

  Operand S1 = Operand::makeScalar(3);
  Operand S2 = Operand::makeScalar(3);
  EXPECT_EQ(S1, S2);
  EXPECT_NE(S1.key(), C1.key());

  Operand A1 = Operand::makeArray(0, {AffineExpr::term(0, 2, 1)});
  Operand A2 = Operand::makeArray(0, {AffineExpr::term(0, 2, 1)});
  Operand A3 = Operand::makeArray(0, {AffineExpr::term(0, 2, 2)});
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, A3);
  EXPECT_NE(A1.key(), A3.key());
}
