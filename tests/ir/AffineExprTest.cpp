//===- tests/ir/AffineExprTest.cpp ----------------------------*- C++ -*-===//

#include "ir/AffineExpr.h"

#include <gtest/gtest.h>

using namespace slp;

TEST(AffineExpr, ConstantBasics) {
  AffineExpr E(7);
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.constant(), 7);
  EXPECT_EQ(E.evaluate({}), 7);
}

TEST(AffineExpr, TermConstruction) {
  AffineExpr E = AffineExpr::term(1, 4, 3); // 4*i1 + 3
  EXPECT_FALSE(E.isConstant());
  EXPECT_EQ(E.coeff(0), 0);
  EXPECT_EQ(E.coeff(1), 4);
  EXPECT_EQ(E.constant(), 3);
  EXPECT_EQ(E.evaluate({10, 5}), 23);
}

TEST(AffineExpr, AdditionMergesCoefficients) {
  AffineExpr A = AffineExpr::term(0, 2, 1);
  AffineExpr B = AffineExpr::term(1, 3, -1);
  AffineExpr Sum = A + B;
  EXPECT_EQ(Sum.coeff(0), 2);
  EXPECT_EQ(Sum.coeff(1), 3);
  EXPECT_EQ(Sum.constant(), 0);
}

TEST(AffineExpr, SubtractionCancelsToConstant) {
  AffineExpr A = AffineExpr::term(0, 4, 7);
  AffineExpr B = AffineExpr::term(0, 4, 3);
  AffineExpr Diff = A - B;
  EXPECT_TRUE(Diff.isConstant());
  EXPECT_EQ(Diff.constant(), 4);
}

TEST(AffineExpr, Scaling) {
  AffineExpr E = AffineExpr::term(0, 2, -3).scaled(-2);
  EXPECT_EQ(E.coeff(0), -4);
  EXPECT_EQ(E.constant(), 6);
}

TEST(AffineExpr, ShiftedIndexFoldsIntoConstant) {
  AffineExpr E = AffineExpr::term(0, 4, 1); // 4i + 1
  AffineExpr Shifted = E.shiftedIndex(0, 2); // i -> i+2 => 4i + 9
  EXPECT_EQ(Shifted.coeff(0), 4);
  EXPECT_EQ(Shifted.constant(), 9);
  // Shifting an index the expression does not use is a no-op.
  AffineExpr Same = E.shiftedIndex(3, 100);
  EXPECT_EQ(Same, E);
}

TEST(AffineExpr, SubstitutedIndex) {
  AffineExpr E = AffineExpr::term(0, 3, 2); // 3i + 2
  AffineExpr S = E.substitutedIndex(0, 2, 5); // i -> 2i+5 => 6i + 17
  EXPECT_EQ(S.coeff(0), 6);
  EXPECT_EQ(S.constant(), 17);
}

TEST(AffineExpr, EqualityIgnoresTrailingZeros) {
  AffineExpr A = AffineExpr::term(0, 1);
  AffineExpr B = AffineExpr::term(0, 1);
  B.setCoeff(5, 3);
  B.setCoeff(5, 0);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.key(), B.key());
}

TEST(AffineExpr, KeyDistinguishesDifferentFunctions) {
  EXPECT_NE(AffineExpr::term(0, 2).key(), AffineExpr::term(1, 2).key());
  EXPECT_NE(AffineExpr::term(0, 2).key(), AffineExpr::term(0, 2, 1).key());
}

TEST(AffineExpr, ToStringRendering) {
  std::vector<std::string> Names{"i", "j"};
  EXPECT_EQ(AffineExpr(5).toString(Names), "5");
  EXPECT_EQ(AffineExpr::term(0, 1).toString(Names), "i");
  EXPECT_EQ(AffineExpr::term(1, 4, -2).toString(Names), "4*j - 2");
  AffineExpr Mixed = AffineExpr::term(0, -1) + AffineExpr::term(1, 2, 3);
  EXPECT_EQ(Mixed.toString(Names), "-i + 2*j + 3");
}
