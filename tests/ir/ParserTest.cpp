//===- tests/ir/ParserTest.cpp --------------------------------*- C++ -*-===//

#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parseOk(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage << " (line " << R.ErrorLine
                             << ")";
  return std::move(*R.TheKernel);
}

} // namespace

TEST(Parser, MinimalKernel) {
  Kernel K = parseOk("kernel k { scalar float a; a = 1.0; }");
  EXPECT_EQ(K.Name, "k");
  EXPECT_EQ(K.Scalars.size(), 1u);
  EXPECT_EQ(K.Body.size(), 1u);
  EXPECT_TRUE(K.Loops.empty());
}

TEST(Parser, Declarations) {
  Kernel K = parseOk(R"(
    kernel decls {
      scalar double x, y;
      scalar int n;
      array float A[16][8] readonly;
      array long B[32];
      x = y;
    })");
  EXPECT_EQ(K.Scalars.size(), 3u);
  EXPECT_EQ(K.Scalars[0].Ty, ScalarType::Float64);
  EXPECT_EQ(K.Scalars[2].Ty, ScalarType::Int32);
  ASSERT_EQ(K.Arrays.size(), 2u);
  EXPECT_TRUE(K.Arrays[0].ReadOnly);
  EXPECT_EQ(K.Arrays[0].DimSizes, (std::vector<int64_t>{16, 8}));
  EXPECT_EQ(K.Arrays[0].numElements(), 128);
  EXPECT_EQ(K.Arrays[1].Ty, ScalarType::Int64);
}

TEST(Parser, LoopNestAndSubscripts) {
  Kernel K = parseOk(R"(
    kernel nest {
      array float A[64][64];
      loop i = 0 .. 16 step 2 {
        loop j = 1 .. 17 {
          A[2*i + 1][j - 1] = A[i][j] + 1.5;
        }
      }
    })");
  ASSERT_EQ(K.Loops.size(), 2u);
  EXPECT_EQ(K.Loops[0].Step, 2);
  EXPECT_EQ(K.Loops[0].tripCount(), 8);
  EXPECT_EQ(K.Loops[1].tripCount(), 16);
  const Operand &Lhs = K.Body.statement(0).lhs();
  ASSERT_TRUE(Lhs.isArray());
  EXPECT_EQ(Lhs.subscripts()[0], AffineExpr::term(0, 2, 1));
  EXPECT_EQ(Lhs.subscripts()[1], AffineExpr::term(1, 1, -1));
}

TEST(Parser, ExpressionPrecedence) {
  Kernel K = parseOk(R"(
    kernel prec { scalar float a, b, c;
      a = b + c * 2.0;
      b = (a + c) * 2.0;
      c = -a * b;
    })");
  // b + (c*2): root is Add.
  EXPECT_EQ(K.Body.statement(0).rhs().opcode(), OpCode::Add);
  // (a+c)*2: root is Mul.
  EXPECT_EQ(K.Body.statement(1).rhs().opcode(), OpCode::Mul);
  // (-a)*b: root is Mul with Neg child.
  EXPECT_EQ(K.Body.statement(2).rhs().opcode(), OpCode::Mul);
  EXPECT_EQ(K.Body.statement(2).rhs().child(0).opcode(), OpCode::Neg);
}

TEST(Parser, IntrinsicCalls) {
  Kernel K = parseOk(R"(
    kernel fns { scalar float a, b;
      a = min(a, b) + max(b, 1.0);
      b = sqrt(abs(a));
    })");
  EXPECT_EQ(K.Body.statement(0).rhs().child(0).opcode(), OpCode::Min);
  EXPECT_EQ(K.Body.statement(0).rhs().child(1).opcode(), OpCode::Max);
  EXPECT_EQ(K.Body.statement(1).rhs().opcode(), OpCode::Sqrt);
}

TEST(Parser, Comments) {
  Kernel K = parseOk(R"(
    kernel c { // a comment
      scalar float a; // trailing
      a = 2.0; // after statement
    })");
  EXPECT_EQ(K.Body.size(), 1u);
}

TEST(Parser, ErrorUnknownSymbol) {
  ParseResult R = parseKernel("kernel k { scalar float a; a = zzz; }");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.ErrorMessage.find("zzz"), std::string::npos);
}

TEST(Parser, ErrorDuplicateSymbol) {
  ParseResult R =
      parseKernel("kernel k { scalar float a; array float a[4]; a = 1.0; }");
  EXPECT_FALSE(R.succeeded());
}

TEST(Parser, ErrorSubscriptArity) {
  ParseResult R = parseKernel(
      "kernel k { array float A[4][4]; loop i = 0..4 { A[i] = 1.0; } }");
  EXPECT_FALSE(R.succeeded());
}

TEST(Parser, ErrorBadLoopStep) {
  ParseResult R = parseKernel(
      "kernel k { array float A[8]; loop i = 0..4 step 0 { A[i] = 1.0; } }");
  EXPECT_FALSE(R.succeeded());
}

TEST(Parser, ErrorUnknownIndexInSubscript) {
  ParseResult R = parseKernel(
      "kernel k { array float A[8]; loop i = 0..4 { A[j] = 1.0; } }");
  EXPECT_FALSE(R.succeeded());
}

TEST(Parser, ErrorReportsLine) {
  ParseResult R = parseKernel("kernel k {\n  scalar float a;\n  a = @;\n}");
  EXPECT_FALSE(R.succeeded());
  EXPECT_EQ(R.ErrorLine, 3u);
}

// Malformed-input suite: every case must come back as a clean ParseResult
// error — non-empty message, no crash, no kernel. The textual fuzzer
// (src/fuzz/Mutator.cpp mutateSource) generates exactly these shapes.

namespace {

void expectCleanError(const std::string &Src,
                      const std::string &MsgFragment = "") {
  ParseResult R = parseKernel(Src);
  EXPECT_FALSE(R.succeeded()) << "accepted: " << Src;
  EXPECT_FALSE(R.ErrorMessage.empty()) << "empty diagnostic for: " << Src;
  EXPECT_FALSE(R.TheKernel.has_value());
  if (!MsgFragment.empty())
    EXPECT_NE(R.ErrorMessage.find(MsgFragment), std::string::npos)
        << "diagnostic '" << R.ErrorMessage << "' lacks '" << MsgFragment
        << "'";
}

} // namespace

TEST(ParserMalformed, TruncatedStatement) {
  expectCleanError("kernel k { scalar float a; a = ");
  expectCleanError("kernel k { scalar float a; a =");
  expectCleanError("kernel k { scalar float a; a ");
  expectCleanError("kernel k { scalar float a; a = 1.0 + ; }");
}

TEST(ParserMalformed, TruncatedDeclaration) {
  expectCleanError("kernel k { scalar float ");
  expectCleanError("kernel k { array float A[");
  expectCleanError("kernel k { array float A[8] ");
  expectCleanError("kernel k { scalar ; }");
}

TEST(ParserMalformed, TruncatedLoopHeader) {
  expectCleanError("kernel k { array float A[8]; loop i = 0 ..");
  expectCleanError("kernel k { array float A[8]; loop i = 0 .. 4");
  expectCleanError("kernel k { array float A[8]; loop = 0 .. 4 { } }");
}

TEST(ParserMalformed, MissingBraces) {
  expectCleanError("kernel k { scalar float a; a = 1.0;");
  expectCleanError("kernel k scalar float a; a = 1.0; }");
  expectCleanError("kernel k {");
  expectCleanError("");
}

TEST(ParserMalformed, BadSubscripts) {
  expectCleanError(
      "kernel k { array float A[8]; loop i = 0..4 { A[i + ] = 1.0; } }");
  expectCleanError(
      "kernel k { array float A[8]; loop i = 0..4 { A[i][i] = 1.0; } }");
  expectCleanError(
      "kernel k { array float A[8]; loop i = 0..4 { A[1.5] = 1.0; } }",
      "integer");
  expectCleanError(
      "kernel k { array float A[8]; loop i = 0..4 { A[i*j] = 1.0; } }");
}

TEST(ParserMalformed, DuplicateSymbols) {
  expectCleanError("kernel k { scalar float a; scalar int a; a = 1.0; }",
                   "duplicate");
  expectCleanError("kernel k { scalar float a, a; a = 1.0; }", "duplicate");
  expectCleanError(
      "kernel k { array float A[4]; array int A[8]; A[0] = 1.0; }",
      "duplicate");
  expectCleanError(
      "kernel k { array float A[4]; loop i = 0..2 { loop i = 0..2 { "
      "A[i] = 1.0; } } }",
      "duplicate");
}

TEST(ParserMalformed, OverlongIntegerLiteral) {
  // The lexer stores numbers as doubles; above 2^53 the int64_t
  // conversion would be lossy (UB past 2^63), so the parser must reject
  // the literal instead of wrapping or crashing.
  expectCleanError("kernel k { array float A[184467440737095516159]; "
                   "A[0] = 1.0; }",
                   "too large");
  expectCleanError("kernel k { array float A[8]; loop i = 0 .. "
                   "99999999999999999999 { A[0] = 1.0; } }",
                   "too large");
}

TEST(ParserMalformed, NonPositiveArrayDimension) {
  expectCleanError("kernel k { array float A[0]; A[0] = 1.0; }",
                   "positive");
  expectCleanError("kernel k { array float A[-4]; A[0] = 1.0; }",
                   "positive");
  expectCleanError("kernel k { array float A[4][0]; A[0][0] = 1.0; }",
                   "positive");
}

TEST(ParserMalformed, OversizedArrayAllocation) {
  // Individually fine dimensions whose product would overflow the
  // element count (or exhaust memory building an Environment).
  expectCleanError("kernel k { array float A[2000000][2000000][2000000]; "
                   "A[0][0][0] = 1.0; }",
                   "too large");
}

TEST(ParserMalformed, DeeplyNestedExpression) {
  // 500 nested parens / unary minuses: must fail via the depth guard, not
  // by overflowing the parser's stack.
  std::string Deep = "kernel k { scalar float a; a = ";
  for (int I = 0; I != 500; ++I)
    Deep += "(1.0 + ";
  Deep += "1.0";
  for (int I = 0; I != 500; ++I)
    Deep += ")";
  Deep += "; }";
  expectCleanError(Deep, "too deeply");

  std::string Minus = "kernel k { scalar float a; a = ";
  // A non-literal after the minus chain so constant folding can't absorb
  // the minuses.
  for (int I = 0; I != 500; ++I)
    Minus += "- (";
  Minus += "a";
  for (int I = 0; I != 500; ++I)
    Minus += ")";
  Minus += "; }";
  expectCleanError(Minus, "too deeply");
}

TEST(ParserMalformed, GarbageTokens) {
  expectCleanError("kernel k { scalar float a; a = #? ; }");
  expectCleanError("kernel \x01\x02 { }");
  expectCleanError("kernel k { scalar float a; a ~ 1.0; }");
}

TEST(Parser, AcceptsDepthJustUnderTheGuard) {
  // 32 nested parens stay comfortably under the 64-level guard.
  std::string Src = "kernel k { scalar float a; a = ";
  for (int I = 0; I != 32; ++I)
    Src += "(";
  Src += "1.0";
  for (int I = 0; I != 32; ++I)
    Src += ")";
  Src += "; }";
  Kernel K = parseOk(Src);
  EXPECT_EQ(K.Body.size(), 1u);
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Src = R"(
    kernel round {
      scalar float p, q;
      array float A[128] readonly;
      array double B[64][2];
      loop i = 0 .. 32 step 2 {
        p = A[3*i + 1] * 0.5;
        B[i][1] = p + q - min(p, 2.0);
      }
    })";
  Kernel K1 = parseOk(Src);
  std::string Printed = printKernel(K1);
  Kernel K2 = parseOk(Printed);
  // Printing the reparsed kernel must reproduce the same text (fixpoint).
  EXPECT_EQ(Printed, printKernel(K2));
  EXPECT_EQ(K1.Body.size(), K2.Body.size());
  for (unsigned I = 0; I != K1.Body.size(); ++I)
    EXPECT_TRUE(
        K1.Body.statement(I).rhs().equals(K2.Body.statement(I).rhs()));
}

TEST(Parser, NegativeSubscriptConstant) {
  Kernel K = parseOk(R"(
    kernel neg {
      array float A[64];
      loop i = 2 .. 34 {
        A[i - 2] = A[2*i - 1] + A[i];
      }
    })");
  const Expr &Rhs = K.Body.statement(0).rhs();
  EXPECT_EQ(Rhs.child(0).leaf().subscripts()[0],
            AffineExpr::term(0, 2, -1));
}

// Predication: `if (cmp) lhs = rhs;` guards, comparisons, and select.

TEST(Parser, GuardedStatement) {
  Kernel K = parseOk(R"(
    kernel g {
      array float m[16] readonly;
      array float a[16];
      array float b[16] readonly;
      loop i = 0 .. 16 {
        if (m[i] > 0.0) a[i] = b[i];
      }
    })");
  ASSERT_EQ(K.Body.size(), 1u);
  const Statement &S = K.Body.statement(0);
  ASSERT_TRUE(S.hasGuard());
  EXPECT_EQ(S.guard().opcode(), OpCode::CmpGT);
  EXPECT_TRUE(S.lhs().isArray());
}

TEST(Parser, AllComparisonOperators) {
  Kernel K = parseOk(R"(
    kernel cmps { scalar float a, b, c;
      a = select(b < c, 1.0, 0.0);
      a = select(b <= c, 1.0, 0.0);
      a = select(b > c, 1.0, 0.0);
      a = select(b >= c, 1.0, 0.0);
      a = select(b == c, 1.0, 0.0);
      a = select(b != c, 1.0, 0.0);
    })");
  static const OpCode Expected[] = {OpCode::CmpLT, OpCode::CmpLE,
                                    OpCode::CmpGT, OpCode::CmpGE,
                                    OpCode::CmpEQ, OpCode::CmpNE};
  ASSERT_EQ(K.Body.size(), 6u);
  for (unsigned I = 0; I != 6; ++I) {
    const Expr &Rhs = K.Body.statement(I).rhs();
    EXPECT_EQ(Rhs.opcode(), OpCode::Select);
    EXPECT_EQ(Rhs.child(0).opcode(), Expected[I]);
  }
}

TEST(Parser, SelectNestsAsOrdinaryExpression) {
  Kernel K = parseOk(R"(
    kernel sel { scalar float a, b, c;
      a = select(b > c, b + 1.0, select(c != 0.0, c, 2.0)) * 0.5;
    })");
  const Expr &Rhs = K.Body.statement(0).rhs();
  EXPECT_EQ(Rhs.opcode(), OpCode::Mul);
  EXPECT_EQ(Rhs.child(0).opcode(), OpCode::Select);
  EXPECT_EQ(Rhs.child(0).child(2).opcode(), OpCode::Select);
}

TEST(ParserMalformed, BadPredicates) {
  // Missing opening paren.
  expectCleanError(
      "kernel k { scalar float a, m; if m > 0.0 a = 1.0; }");
  // Empty predicate.
  expectCleanError("kernel k { scalar float a; if () a = 1.0; }");
  // Truncated comparison inside the predicate.
  expectCleanError("kernel k { scalar float a, m; if (m >) a = 1.0; }");
  // Unclosed predicate.
  expectCleanError("kernel k { scalar float a, m; if (m > 0.0 a = 1.0; }");
  // Guard with no statement to guard.
  expectCleanError("kernel k { scalar float a, m; if (m > 0.0); }");
  // Truncated at the guard keyword.
  expectCleanError("kernel k { scalar float a, m; if ");
}

TEST(ParserMalformed, BadSelect) {
  // Wrong arity.
  expectCleanError("kernel k { scalar float a, b; a = select(b > 0.0); }");
  expectCleanError(
      "kernel k { scalar float a, b; a = select(b > 0.0, b); }");
  // Truncated argument list.
  expectCleanError("kernel k { scalar float a, b; a = select(b > 0.0, ");
}
