//===- tests/ir/RoundTripTest.cpp -----------------------------*- C++ -*-===//
//
// Property: printing any (random) kernel and re-parsing the text yields a
// structurally identical kernel, and both compute identical results.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

class PrintParseRoundTrip : public testing::TestWithParam<uint64_t> {};

void expectStructurallyEqual(const Kernel &A, const Kernel &B) {
  ASSERT_EQ(A.Scalars.size(), B.Scalars.size());
  ASSERT_EQ(A.Arrays.size(), B.Arrays.size());
  for (unsigned I = 0; I != A.Arrays.size(); ++I) {
    EXPECT_EQ(A.Arrays[I].Name, B.Arrays[I].Name);
    EXPECT_EQ(A.Arrays[I].DimSizes, B.Arrays[I].DimSizes);
    EXPECT_EQ(A.Arrays[I].ReadOnly, B.Arrays[I].ReadOnly);
    EXPECT_EQ(A.Arrays[I].Ty, B.Arrays[I].Ty);
  }
  ASSERT_EQ(A.Loops.size(), B.Loops.size());
  for (unsigned I = 0; I != A.Loops.size(); ++I) {
    EXPECT_EQ(A.Loops[I].Lower, B.Loops[I].Lower);
    EXPECT_EQ(A.Loops[I].Upper, B.Loops[I].Upper);
    EXPECT_EQ(A.Loops[I].Step, B.Loops[I].Step);
  }
  ASSERT_EQ(A.Body.size(), B.Body.size());
  for (unsigned I = 0; I != A.Body.size(); ++I) {
    EXPECT_TRUE(A.Body.statement(I).lhs() == B.Body.statement(I).lhs());
    EXPECT_TRUE(A.Body.statement(I).rhs().equals(B.Body.statement(I).rhs()));
    ASSERT_EQ(A.Body.statement(I).hasGuard(), B.Body.statement(I).hasGuard());
    if (A.Body.statement(I).hasGuard())
      EXPECT_TRUE(
          A.Body.statement(I).guard().equals(B.Body.statement(I).guard()));
  }
}

} // namespace

TEST_P(PrintParseRoundTrip, RandomKernels) {
  Rng R(GetParam());
  RandomKernelOptions Options;
  Kernel K = randomKernel(R, Options);

  std::string Text = printKernel(K);
  ParseResult Reparsed = parseKernel(Text);
  ASSERT_TRUE(Reparsed.succeeded())
      << Reparsed.ErrorMessage << "\nsource:\n"
      << Text;
  expectStructurallyEqual(K, *Reparsed.TheKernel);

  // Semantics: identical executions.
  Environment EnvA(K, GetParam());
  runKernelScalar(K, EnvA);
  Environment EnvB(*Reparsed.TheKernel, GetParam());
  runKernelScalar(*Reparsed.TheKernel, EnvB);
  EXPECT_TRUE(EnvA.matches(EnvB, static_cast<unsigned>(K.Scalars.size()),
                           static_cast<unsigned>(K.Arrays.size())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseRoundTrip,
                         testing::Range<uint64_t>(100, 140));

// Same property over kernels where half the statements carry guards, so
// `if (cmp) lhs = rhs;`, comparisons, and select all survive the
// print/parse cycle.
class PredicatedRoundTrip : public testing::TestWithParam<uint64_t> {};

TEST_P(PredicatedRoundTrip, RandomGuardedKernels) {
  Rng R(GetParam());
  RandomKernelOptions Options;
  Options.GuardProbability = 0.5;
  Kernel K = randomKernel(R, Options);

  std::string Text = printKernel(K);
  ParseResult Reparsed = parseKernel(Text);
  ASSERT_TRUE(Reparsed.succeeded())
      << Reparsed.ErrorMessage << "\nsource:\n"
      << Text;
  expectStructurallyEqual(K, *Reparsed.TheKernel);
  // Printing the reparse must reproduce the text exactly (fixpoint).
  EXPECT_EQ(Text, printKernel(*Reparsed.TheKernel));

  Environment EnvA(K, GetParam());
  runKernelScalar(K, EnvA);
  Environment EnvB(*Reparsed.TheKernel, GetParam());
  runKernelScalar(*Reparsed.TheKernel, EnvB);
  EXPECT_TRUE(EnvA.matches(EnvB, static_cast<unsigned>(K.Scalars.size()),
                           static_cast<unsigned>(K.Arrays.size())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicatedRoundTrip,
                         testing::Range<uint64_t>(200, 230));

TEST(PrintParseRoundTrip, SuiteKernels) {
  for (const Workload &W : standardWorkloads()) {
    std::string Text = printKernel(W.TheKernel);
    ParseResult Reparsed = parseKernel(Text);
    ASSERT_TRUE(Reparsed.succeeded()) << W.Name << ": "
                                      << Reparsed.ErrorMessage;
    expectStructurallyEqual(W.TheKernel, *Reparsed.TheKernel);
  }
}

TEST(PrintParseRoundTrip, PredicatedSuiteKernels) {
  for (const Workload &W : predicatedWorkloads()) {
    std::string Text = printKernel(W.TheKernel);
    ParseResult Reparsed = parseKernel(Text);
    ASSERT_TRUE(Reparsed.succeeded()) << W.Name << ": "
                                      << Reparsed.ErrorMessage;
    expectStructurallyEqual(W.TheKernel, *Reparsed.TheKernel);
  }
}
