//===- tests/workloads/WorkloadsTest.cpp ----------------------*- C++ -*-===//

#include "workloads/Workloads.h"

#include "analysis/Dependence.h"
#include "ir/Interpreter.h"

#include <gtest/gtest.h>

#include <set>

using namespace slp;

TEST(Workloads, SuiteHasSixteenBenchmarks) {
  std::vector<Workload> All = standardWorkloads();
  ASSERT_EQ(All.size(), 16u);
  unsigned Nas = 0;
  std::set<std::string> Names;
  for (const Workload &W : All) {
    Nas += W.IsNas;
    EXPECT_TRUE(Names.insert(W.Name).second) << "duplicate " << W.Name;
    EXPECT_FALSE(W.Description.empty());
  }
  EXPECT_EQ(Nas, 6u); // ua, ft, bt, sp, mg, cg
}

TEST(Workloads, LookupByName) {
  Workload W = workloadByName("milc");
  EXPECT_EQ(W.Name, "milc");
  EXPECT_FALSE(W.IsNas);
  EXPECT_TRUE(workloadByName("cg").IsNas);
}

TEST(Workloads, KernelsExecuteInBounds) {
  // runKernelScalar asserts on any out-of-bounds access; executing every
  // kernel validates all subscript/size pairs.
  for (const Workload &W : standardWorkloads()) {
    Environment Env(W.TheKernel, 5);
    runKernelScalar(W.TheKernel, Env);
    SUCCEED() << W.Name;
  }
}

TEST(Workloads, TripCountsAreUnrollable) {
  for (const Workload &W : standardWorkloads()) {
    ASSERT_FALSE(W.TheKernel.Loops.empty()) << W.Name;
    int64_t Trip = W.TheKernel.Loops.back().tripCount();
    EXPECT_EQ(Trip % 4, 0) << W.Name << " trip " << Trip;
  }
}

TEST(Workloads, MulticoreParamsSane) {
  for (const Workload &W : standardWorkloads()) {
    EXPECT_GE(W.Multicore.SerialFraction, 0.0);
    EXPECT_LT(W.Multicore.SerialFraction, 0.2);
    EXPECT_GE(W.Multicore.SyncFractionPerCore, 0.0);
    EXPECT_LT(W.Multicore.SyncFractionPerCore, 0.01);
  }
}

TEST(Workloads, RandomKernelIsWellFormed) {
  Rng R(99);
  RandomKernelOptions Options;
  for (unsigned I = 0; I != 50; ++I) {
    Kernel K = randomKernel(R, Options);
    EXPECT_GE(K.Body.size(), Options.MinStatements);
    EXPECT_LE(K.Body.size(), Options.MaxStatements);
    // Executing checks bounds.
    Environment Env(K, I);
    runKernelScalar(K, Env);
    // Dependence analysis must not choke on it.
    DependenceInfo Deps(K);
    EXPECT_EQ(Deps.numStatements(), K.Body.size());
  }
}

TEST(Workloads, RandomKernelNeverWritesReadonlyArrays) {
  Rng R(7);
  RandomKernelOptions Options;
  for (unsigned I = 0; I != 50; ++I) {
    Kernel K = randomKernel(R, Options);
    for (const Statement &S : K.Body)
      if (S.lhs().isArray())
        EXPECT_FALSE(K.array(S.lhs().symbol()).ReadOnly);
  }
}

TEST(Workloads, RandomKernelDeterministicPerSeed) {
  RandomKernelOptions Options;
  Rng R1(42), R2(42);
  Kernel K1 = randomKernel(R1, Options);
  Kernel K2 = randomKernel(R2, Options);
  ASSERT_EQ(K1.Body.size(), K2.Body.size());
  for (unsigned I = 0; I != K1.Body.size(); ++I) {
    EXPECT_TRUE(K1.Body.statement(I).lhs() == K2.Body.statement(I).lhs());
    EXPECT_TRUE(K1.Body.statement(I).rhs().equals(K2.Body.statement(I).rhs()));
  }
}
