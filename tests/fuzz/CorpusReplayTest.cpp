//===- tests/fuzz/CorpusReplayTest.cpp ------------------------*- C++ -*-===//
//
// Replays the recorded fuzz corpus (tests/fuzz/corpus/*.slp) as ordinary
// unit tests: every reduced repro the fuzzer ever minimized stays a
// regression test forever. Also runs a short live fuzz campaign and the
// harness's own mutation test (inject a scheduling bug, demand it is
// caught and delta-reduced to a tiny kernel).
//
// SLP_FUZZ_CORPUS_DIR is injected by CMake and points at the source-tree
// corpus directory, so newly recorded cases are picked up without
// reconfiguring.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Mutator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace slp;

#ifndef SLP_FUZZ_CORPUS_DIR
#error "CMake must define SLP_FUZZ_CORPUS_DIR"
#endif

namespace {

TEST(CorpusReplay, EveryRecordedCasePasses) {
  std::vector<std::string> Files = listCorpusFiles(SLP_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(Files.empty())
      << "no corpus cases under " << SLP_FUZZ_CORPUS_DIR;
  for (const std::string &Path : Files) {
    std::string Text;
    ASSERT_TRUE(readFile(Path, Text)) << Path;
    FuzzCase Case;
    std::string Error;
    ASSERT_TRUE(parseFuzzCase(Text, Case, &Error)) << Path << ": " << Error;
    EXPECT_TRUE(runFuzzCase(Case, &Error)) << Path << ": " << Error;
  }
}

TEST(CorpusReplay, ReplayDirMatchesPerCaseRuns) {
  std::vector<std::string> Errors;
  unsigned Count = replayCorpusDir(SLP_FUZZ_CORPUS_DIR, Errors);
  EXPECT_GE(Count, 5u);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
}

TEST(CorpusReplay, MalformedHeaderIsRejected) {
  FuzzCase Case;
  std::string Error;
  EXPECT_FALSE(parseFuzzCase("// fuzz: opt=warp\nkernel k { }\n", Case,
                             &Error));
  EXPECT_NE(Error.find("warp"), std::string::npos);
  EXPECT_FALSE(parseFuzzCase("// fuzz: color=red\nkernel k { }\n", Case,
                             &Error));
  EXPECT_NE(Error.find("color"), std::string::npos);
  EXPECT_FALSE(parseFuzzCase("// fuzz: opt=global\n// header only\n",
                             Case, &Error));
}

TEST(CorpusReplay, SerializeParseRoundTrip) {
  FuzzCase Case;
  Case.Config.Kind = OptimizerKind::Global;
  Case.Config.DatapathBits = 256;
  Case.Config.Grouping = GroupingImpl::Reference;
  Case.Config.Threads = 3;
  Case.Config.EnvSeeds = {1, 99};
  Case.Config.Inject = BugInjection::DuplicateLane;
  Case.Source = "kernel k {\n  scalar float a;\n  a = 1.0;\n}\n";
  Case.Reason = "two\nlines";
  FuzzCase Back;
  std::string Error;
  ASSERT_TRUE(parseFuzzCase(serializeFuzzCase(Case), Back, &Error)) << Error;
  EXPECT_EQ(Back.Config.Kind, OptimizerKind::Global);
  EXPECT_EQ(Back.Config.DatapathBits, 256u);
  EXPECT_EQ(Back.Config.Grouping, GroupingImpl::Reference);
  EXPECT_EQ(Back.Config.Threads, 3u);
  EXPECT_EQ(Back.Config.EnvSeeds, (std::vector<uint64_t>{1, 99}));
  EXPECT_EQ(Back.Config.Inject, BugInjection::DuplicateLane);
  EXPECT_EQ(Back.Source, Case.Source);
  EXPECT_EQ(Back.Reason, Case.Reason);
}

TEST(CorpusReplay, VerifyVectorKeyRoundTrip) {
  // Default (on) stays implicit so pre-oracle corpus files round-trip
  // byte-identically; only the opt-out is serialized.
  FuzzCase Case;
  Case.Source = "kernel k {\n  scalar float a;\n  a = 1.0;\n}\n";
  EXPECT_EQ(serializeFuzzCase(Case).find("verify-vector"),
            std::string::npos);

  Case.Config.VerifyVector = false;
  std::string Text = serializeFuzzCase(Case);
  EXPECT_NE(Text.find("// fuzz: verify-vector=off"), std::string::npos);
  FuzzCase Back;
  std::string Error;
  ASSERT_TRUE(parseFuzzCase(Text, Back, &Error)) << Error;
  EXPECT_FALSE(Back.Config.VerifyVector);

  // Absent key means on; a bad value is a header error.
  ASSERT_TRUE(parseFuzzCase(Case.Source, Back, &Error)) << Error;
  EXPECT_TRUE(Back.Config.VerifyVector);
  EXPECT_FALSE(parseFuzzCase(
      "// fuzz: verify-vector=maybe\nkernel k { }\n", Back, &Error));
  EXPECT_NE(Error.find("verify-vector"), std::string::npos);
}

TEST(FuzzCampaign, ShortRunIsClean) {
  FuzzConfig Config;
  Config.Seed = 20260806;
  Config.Iterations = 40;
  FuzzOutcome Outcome = runFuzzer(Config);
  EXPECT_TRUE(Outcome.clean());
  for (const FuzzFailure &F : Outcome.Failures)
    ADD_FAILURE() << F.Reason << "\n" << F.Case.Source;
  EXPECT_EQ(Outcome.Stats.Iterations, 40u);
  EXPECT_GT(Outcome.Stats.PipelineRuns, 40u * 4);
  EXPECT_GT(Outcome.Stats.TextCases, 0u);
  // The static translation validator ran as a third oracle on every
  // config and never disagreed with the dynamic equivalence verdict.
  EXPECT_GT(Outcome.Stats.StaticVerifyRuns, 0u);
  EXPECT_EQ(Outcome.Stats.StaticVerifyRejects, 0u);
  EXPECT_EQ(Outcome.Stats.OracleDisagreements, 0u);
}

TEST(FuzzCampaign, InjectedBugIsCaughtAndReducedSmall) {
  // The harness mutation test of the acceptance criteria: corrupt every
  // schedule, demand the verifier catches each applicable corruption, and
  // demand the recorded demonstration delta-reduces to <= 10 statements.
  for (BugInjection Inject :
       {BugInjection::DropItem, BugInjection::DuplicateLane,
        BugInjection::SwapDependent}) {
    FuzzConfig Config;
    Config.Seed = 5;
    Config.Iterations = 40;
    Config.Inject = Inject;
    Config.CorpusDir = testing::TempDir() + "slp-fuzz-inject";
    FuzzOutcome Outcome = runFuzzer(Config);
    EXPECT_EQ(Outcome.Stats.InjectedMissed, 0u)
        << bugInjectionName(Inject);
    EXPECT_GT(Outcome.Stats.InjectedCaught, 0u) << bugInjectionName(Inject);
    // Every applicable corruption must be rejected statically too: the
    // lane-provenance verifier is an independent oracle over the emitted
    // program, not a restatement of the schedule checks.
    EXPECT_GT(Outcome.Stats.StaticVerifyRuns, 0u) << bugInjectionName(Inject);
    EXPECT_EQ(Outcome.Stats.StaticVerifyRuns, Outcome.Stats.StaticVerifyRejects)
        << bugInjectionName(Inject);
    ASSERT_FALSE(Outcome.InjectedDemos.empty()) << bugInjectionName(Inject);
    const FuzzFailure &Demo = Outcome.InjectedDemos.front();
    EXPECT_LE(Demo.ReducedStatements, 10u) << bugInjectionName(Inject);
    // The written demo must replay through the corpus machinery.
    std::string Text, Error;
    ASSERT_TRUE(readFile(Demo.FilePath, Text));
    FuzzCase Case;
    ASSERT_TRUE(parseFuzzCase(Text, Case, &Error)) << Error;
    EXPECT_TRUE(runFuzzCase(Case, &Error)) << Error;
  }
}

// Guard expressions are uses like any other: operand-level mutations must
// be able to reach an array reference (or constant) that appears only in a
// statement's guard. Before guards joined the use walk, every mutation
// below returned nullopt on these kernels for every seed.
TEST(Mutator, GuardArrayReferenceIsMutable) {
  const char *Src = "kernel guard_only {\n"
                    "array float W[64];\n"
                    "scalar float s, x;\n"
                    "loop i = 0 .. 64 {\n"
                    "  if (W[i] > 0.5) s = x;\n"
                    "}\n"
                    "}\n";
  ParseResult R = parseKernel(Src);
  ASSERT_TRUE(R.succeeded()) << R.ErrorMessage;
  const Kernel &Base = *R.TheKernel;
  const std::string BasePrinted = printKernel(Base);

  bool SubscriptApplied = false;
  bool SubscriptChangedGuard = false;
  bool ConstantApplied = false;
  for (uint64_t Seed = 0; Seed != 400; ++Seed) {
    Kernel K = Base.clone();
    Rng Rand(Seed);
    std::optional<MutationKind> Kind = mutateKernel(K, Rand);
    if (!Kind)
      continue;
    if (*Kind == MutationKind::PerturbSubscriptConstant ||
        *Kind == MutationKind::PerturbSubscriptCoeff) {
      // The guard holds the kernel's only array reference, so a subscript
      // perturbation firing at all proves the guard was scanned.
      SubscriptApplied = true;
      if (printKernel(K) != BasePrinted)
        SubscriptChangedGuard = true;
    }
    if (*Kind == MutationKind::PerturbConstant) {
      // Likewise 0.5 in the guard is the only constant leaf.
      ConstantApplied = true;
      EXPECT_NE(printKernel(K), BasePrinted);
    }
  }
  EXPECT_TRUE(SubscriptApplied);
  EXPECT_TRUE(SubscriptChangedGuard);
  EXPECT_TRUE(ConstantApplied);
}

TEST(Mutator, GuardOperandCanBeRedirected) {
  const char *Src = "kernel guard_redirect {\n"
                    "array float W[64];\n"
                    "array float V[64];\n"
                    "scalar float s;\n"
                    "loop i = 0 .. 64 {\n"
                    "  if (W[i] > 0.5) s = 2.0;\n"
                    "}\n"
                    "}\n";
  ParseResult R = parseKernel(Src);
  ASSERT_TRUE(R.succeeded()) << R.ErrorMessage;
  const Kernel &Base = *R.TheKernel;

  // The rhs is a lone constant, so RedirectOperand can only succeed by
  // retargeting the guard's W[i]; with two rank-1 arrays it must
  // eventually land on V.
  bool Redirected = false;
  bool RetargetedToV = false;
  for (uint64_t Seed = 0; Seed != 400; ++Seed) {
    Kernel K = Base.clone();
    Rng Rand(Seed);
    std::optional<MutationKind> Kind = mutateKernel(K, Rand);
    if (Kind != MutationKind::RedirectOperand)
      continue;
    Redirected = true;
    K.Body.statement(0).forEachUse([&](const Operand &Op) {
      if (Op.isArray() && K.Arrays[Op.symbol()].Name == "V")
        RetargetedToV = true;
    });
  }
  EXPECT_TRUE(Redirected);
  EXPECT_TRUE(RetargetedToV);
}

TEST(FuzzCampaign, SameSeedSameStats) {
  FuzzConfig Config;
  Config.Seed = 31337;
  Config.Iterations = 12;
  FuzzOutcome A = runFuzzer(Config);
  FuzzOutcome B = runFuzzer(Config);
  EXPECT_EQ(A.Stats.KernelsTested, B.Stats.KernelsTested);
  EXPECT_EQ(A.Stats.MutationsApplied, B.Stats.MutationsApplied);
  EXPECT_EQ(A.Stats.PipelineRuns, B.Stats.PipelineRuns);
  EXPECT_EQ(A.Stats.ParserErrors, B.Stats.ParserErrors);
  EXPECT_EQ(A.Failures.size(), B.Failures.size());
}

} // namespace
