//===- tests/transform/UnrollTest.cpp -------------------------*- C++ -*-===//

#include "transform/Unroll.h"

#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

/// Checks that the unrolled kernel computes the same values as the
/// original on the original symbols.
void expectEquivalent(const Kernel &Original, const Kernel &Unrolled,
                      uint64_t Seed) {
  Environment EnvA(Original, Seed);
  runKernelScalar(Original, EnvA);
  Environment EnvB(Original, Seed);
  for (unsigned S = static_cast<unsigned>(Original.Scalars.size()),
                E = static_cast<unsigned>(Unrolled.Scalars.size());
       S != E; ++S)
    EnvB.addScalarStorage(0);
  runKernelScalar(Unrolled, EnvB);
  EXPECT_TRUE(EnvB.matches(EnvA,
                           static_cast<unsigned>(Original.Scalars.size()),
                           static_cast<unsigned>(Original.Arrays.size())));
}

} // namespace

TEST(Unroll, FactorOneIsCopy) {
  Kernel K = parse(R"(
    kernel k { array float A[16]; loop i = 0 .. 16 { A[i] = 1.0; } })");
  Kernel U = unrollInnermost(K, 1);
  EXPECT_EQ(printKernel(K), printKernel(U));
}

TEST(Unroll, BodyReplicationAndStep) {
  Kernel K = parse(R"(
    kernel k { array float A[16]; loop i = 0 .. 16 { A[i] = 1.0; } })");
  Kernel U = unrollInnermost(K, 4);
  EXPECT_EQ(U.Body.size(), 4u);
  EXPECT_EQ(U.Loops[0].Step, 4);
  EXPECT_EQ(U.Loops[0].tripCount(), 4);
  // Instance k references A[i + k].
  for (unsigned Inst = 0; Inst != 4; ++Inst) {
    const Operand &Lhs = U.Body.statement(Inst).lhs();
    EXPECT_EQ(Lhs.subscripts()[0], AffineExpr::term(0, 1, Inst));
  }
}

TEST(Unroll, SubscriptShiftHonorsOriginalStep) {
  Kernel K = parse(R"(
    kernel k { array float A[64];
      loop i = 0 .. 64 step 2 { A[i] = 1.0; } })");
  Kernel U = unrollInnermost(K, 2);
  EXPECT_EQ(U.Loops[0].Step, 4);
  EXPECT_EQ(U.Body.statement(1).lhs().subscripts()[0],
            AffineExpr::term(0, 1, 2));
}

TEST(Unroll, ScalarExpansionRenamesTemps) {
  Kernel K = parse(R"(
    kernel k { scalar float t; array float A[16] readonly; array float B[16];
      loop i = 0 .. 16 {
        t = A[i] * 2.0;
        B[i] = t + 1.0;
      } })");
  Kernel U = unrollInnermost(K, 4);
  // Three clones (instances 0-2); the final instance keeps `t`.
  EXPECT_EQ(U.Scalars.size(), 4u);
  EXPECT_TRUE(U.findScalar("t.u0").has_value());
  EXPECT_TRUE(U.findScalar("t.u2").has_value());
  EXPECT_FALSE(U.findScalar("t.u3").has_value());
  // Instance 0 defines and uses t.u0.
  SymbolId Clone0 = *U.findScalar("t.u0");
  EXPECT_EQ(U.Body.statement(0).lhs().symbol(), Clone0);
  bool UsesClone = false;
  U.Body.statement(1).rhs().forEachLeaf([&](const Operand &O) {
    if (O.isScalar() && O.symbol() == Clone0)
      UsesClone = true;
  });
  EXPECT_TRUE(UsesClone);
  // Final instance defines the original symbol (live-out value).
  EXPECT_EQ(U.Body.statement(6).lhs().symbol(), *U.findScalar("t"));
}

TEST(Unroll, LiveInScalarsAreNotRenamed) {
  Kernel K = parse(R"(
    kernel k { scalar float q; array float B[16];
      loop i = 0 .. 16 { B[i] = q * 2.0; } })");
  Kernel U = unrollInnermost(K, 4);
  EXPECT_EQ(U.Scalars.size(), 1u); // q only; never defined in the body
}

TEST(Unroll, UseBeforeDefPreventsExpansion) {
  Kernel K = parse(R"(
    kernel k { scalar float acc; array float A[16] readonly;
      loop i = 0 .. 16 { acc = acc + A[i]; } })");
  Kernel U = unrollInnermost(K, 4);
  // The recurrence must not be renamed.
  EXPECT_EQ(U.Scalars.size(), 1u);
  for (const Statement &S : U.Body)
    EXPECT_EQ(S.lhs().symbol(), 0u);
}

TEST(Unroll, SemanticEquivalenceSimple) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      loop i = 0 .. 32 { B[i] = A[i] * 3.0 + 1.0; } })");
  expectEquivalent(K, unrollInnermost(K, 4), 11);
}

TEST(Unroll, SemanticEquivalenceWithTemps) {
  Kernel K = parse(R"(
    kernel k { scalar float t, u; array float A[64] readonly; array float B[64];
      loop i = 0 .. 64 {
        t = A[i] + 1.0;
        u = t * t;
        B[i] = u - t;
      } })");
  expectEquivalent(K, unrollInnermost(K, 4), 12);
}

TEST(Unroll, SemanticEquivalenceRecurrence) {
  Kernel K = parse(R"(
    kernel k { scalar float acc; array float A[32] readonly;
      loop i = 0 .. 32 { acc = acc + A[i]; } })");
  expectEquivalent(K, unrollInnermost(K, 2), 13);
}

TEST(Unroll, SemanticEquivalenceNestedLoops) {
  Kernel K = parse(R"(
    kernel k { array float A[8][16];
      loop i = 0 .. 8 { loop j = 0 .. 16 {
        A[i][j] = A[i][j] * 2.0 + 1.0;
      } } })");
  expectEquivalent(K, unrollInnermost(K, 4), 14);
}

TEST(Unroll, ChooseFactorDivisibility) {
  Kernel K = parse(R"(
    kernel k { array float A[12]; loop i = 0 .. 6 { A[i] = 1.0; } })");
  EXPECT_EQ(chooseUnrollFactor(K, 4), 3u); // 6 % 4 != 0, 6 % 3 == 0
  EXPECT_EQ(chooseUnrollFactor(K, 3), 3u);
  EXPECT_EQ(chooseUnrollFactor(K, 2), 2u);
  EXPECT_EQ(chooseUnrollFactor(K, 1), 1u);
  Kernel K12 = parse(R"(
    kernel k { array float A[12]; loop i = 0 .. 12 { A[i] = 1.0; } })");
  EXPECT_EQ(chooseUnrollFactor(K12, 4), 4u);
}

TEST(Unroll, ChooseFactorNoLoops) {
  Kernel K = parse("kernel k { scalar float a; a = 1.0; }");
  EXPECT_EQ(chooseUnrollFactor(K, 4), 1u);
}

TEST(Unroll, ChooseFactorPrime) {
  Kernel K = parse(R"(
    kernel k { array float A[7]; loop i = 0 .. 7 { A[i] = 1.0; } })");
  EXPECT_EQ(chooseUnrollFactor(K, 4), 1u);
}

TEST(Unroll, GuardClonedPerIterationCopy) {
  Kernel K = parse(R"(
    kernel g {
      array float m[16] readonly;
      array float a[16];
      loop i = 0 .. 16 { if (m[i] > 0.5) a[i] = a[i] + 1.0; }
    })");
  Kernel U = unrollInnermost(K, 4);
  ASSERT_EQ(U.Body.size(), 4u);
  for (unsigned I = 0; I != 4; ++I) {
    const Statement &S = U.Body.statement(I);
    ASSERT_TRUE(S.hasGuard()) << "clone " << I << " lost its guard";
    EXPECT_EQ(S.guard().opcode(), OpCode::CmpGT);
    // Each clone's guard reads its own lane of the mask array.
    const Operand &MaskRef = S.guard().child(0).leaf();
    ASSERT_TRUE(MaskRef.isArray());
    EXPECT_EQ(MaskRef.subscripts()[0].constant(), static_cast<int64_t>(I));
  }
  expectEquivalent(K, U, 31);
}
