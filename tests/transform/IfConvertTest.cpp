//===- tests/transform/IfConvertTest.cpp ----------------------*- C++ -*-===//
//
// Guard canonicalization (transform/IfConvert.h): literal constant guards
// fold (true drops the guard, false deletes the statement), everything
// data-dependent survives untouched, and the folded kernel stays
// semantically equivalent to the original.
//
//===----------------------------------------------------------------------===//

#include "transform/IfConvert.h"

#include "analysis/ValueRange.h"

#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

void expectEquivalent(const Kernel &A, const Kernel &B, uint64_t Seed) {
  Environment EnvA(A, Seed);
  runKernelScalar(A, EnvA);
  Environment EnvB(B, Seed);
  runKernelScalar(B, EnvB);
  EXPECT_TRUE(EnvA.matches(EnvB, static_cast<unsigned>(A.Scalars.size()),
                           static_cast<unsigned>(A.Arrays.size())));
}

} // namespace

TEST(IfConvert, DataDependentGuardSurvives) {
  Kernel K = parse(R"(
    kernel g {
      array float m[8] readonly;
      array float a[8];
      loop i = 0 .. 8 { if (m[i] > 0.0) a[i] = 1.0; }
    })");
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats);
  EXPECT_EQ(Stats.GuardedStatements, 1u);
  EXPECT_EQ(Stats.FoldedTrue, 0u);
  EXPECT_EQ(Stats.FoldedFalse, 0u);
  ASSERT_EQ(Out.Body.size(), 1u);
  EXPECT_TRUE(Out.Body.statement(0).hasGuard());
  expectEquivalent(K, Out, 3);
}

TEST(IfConvert, ConstantTrueGuardDropped) {
  Kernel K = parse(R"(
    kernel t {
      array float a[8];
      loop i = 0 .. 8 { if (2.0) a[i] = 1.0; }
    })");
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats);
  EXPECT_EQ(Stats.FoldedTrue, 1u);
  EXPECT_EQ(Stats.GuardedStatements, 0u);
  ASSERT_EQ(Out.Body.size(), 1u);
  EXPECT_FALSE(Out.Body.statement(0).hasGuard());
  expectEquivalent(K, Out, 5);
}

TEST(IfConvert, ConstantFalseStatementDeleted) {
  Kernel K = parse(R"(
    kernel f {
      array float a[8];
      loop i = 0 .. 8 {
        if (0.0) a[i] = 9.0;
        a[i] = 2.0;
      }
    })");
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats);
  EXPECT_EQ(Stats.FoldedFalse, 1u);
  ASSERT_EQ(Out.Body.size(), 1u);
  EXPECT_FALSE(Out.Body.statement(0).hasGuard());
  expectEquivalent(K, Out, 7);
}

TEST(IfConvert, ConstantComparisonGuardIsNotFolded) {
  // Only whole-guard literal constants fold; a comparison node — even one
  // over constants — stays a runtime guard, so an all-lanes-false masked
  // store remains exercisable downstream.
  Kernel K = parse(R"(
    kernel c {
      array float a[8];
      loop i = 0 .. 8 { if (1.0 < 0.5) a[i] = 1.0; }
    })");
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats);
  EXPECT_EQ(Stats.GuardedStatements, 1u);
  EXPECT_EQ(Stats.FoldedFalse, 0u);
  ASSERT_EQ(Out.Body.size(), 1u);
  EXPECT_TRUE(Out.Body.statement(0).hasGuard());
  expectEquivalent(K, Out, 11);
}

TEST(IfConvert, StraightLineKernelUnchanged) {
  Kernel K = parse(R"(
    kernel s {
      array float a[8];
      loop i = 0 .. 8 { a[i] = a[i] + 1.0; }
    })");
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats);
  EXPECT_EQ(Stats.GuardedStatements, 0u);
  EXPECT_EQ(Stats.FoldedTrue, 0u);
  EXPECT_EQ(Stats.FoldedFalse, 0u);
  EXPECT_EQ(printKernel(K), printKernel(Out));
}

//===----------------------------------------------------------------------===//
// Range-driven folding (the value-range analysis consumer)
//===----------------------------------------------------------------------===//

TEST(IfConvert, RangeProvenAlwaysTakenGuardDropped) {
  // `a = 2.0` makes `a > 1.0` provably true by intervals even though the
  // guard is not a literal constant.
  Kernel K = parse(R"(
    kernel r {
      scalar float a;
      array float x[8];
      loop i = 0 .. 8 {
        a = 2.0;
        if (a > 1.0) x[i] = a;
      }
    })");
  ValueRangeInfo Ranges = computeValueRanges(K);
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats, &Ranges);
  EXPECT_EQ(Stats.FoldedRangeTrue, 1u);
  EXPECT_EQ(Stats.FoldedTrue, 0u);
  EXPECT_EQ(Stats.GuardedStatements, 0u);
  ASSERT_EQ(Out.Body.size(), 2u);
  EXPECT_FALSE(Out.Body.statement(1).hasGuard());
  expectEquivalent(K, Out, 5);
}

TEST(IfConvert, RangeProvenNeverTakenStatementDeleted) {
  Kernel K = parse(R"(
    kernel r {
      scalar float a;
      array float x[8];
      loop i = 0 .. 8 {
        a = 2.0;
        if (a < 1.0) x[i] = a;
      }
    })");
  ValueRangeInfo Ranges = computeValueRanges(K);
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats, &Ranges);
  EXPECT_EQ(Stats.FoldedRangeFalse, 1u);
  EXPECT_EQ(Out.Body.size(), 1u);
  expectEquivalent(K, Out, 7);
}

TEST(IfConvert, RangeFoldingSkipsLiteralConstantGuards) {
  // The literal-constant carve-out survives range analysis: ranges decide
  // `1.0 < 0.5` trivially, but folding it would kill the all-lanes-false
  // masked-store coverage the differential suites rely on.
  Kernel K = parse(R"(
    kernel c {
      array float a[8];
      loop i = 0 .. 8 { if (1.0 < 0.5) a[i] = 1.0; }
    })");
  ValueRangeInfo Ranges = computeValueRanges(K);
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats, &Ranges);
  EXPECT_EQ(Stats.FoldedRangeFalse, 0u);
  EXPECT_EQ(Stats.FoldedRangeTrue, 0u);
  EXPECT_EQ(Stats.GuardedStatements, 1u);
  ASSERT_EQ(Out.Body.size(), 1u);
  EXPECT_TRUE(Out.Body.statement(0).hasGuard());
}

TEST(IfConvert, UnprovableGuardSurvivesRangeAnalysis) {
  // Array loads are unknown to the interval analysis: the guard stays.
  Kernel K = parse(R"(
    kernel u {
      array float m[8] readonly;
      array float a[8];
      loop i = 0 .. 8 { if (m[i] > 0.0) a[i] = 1.0; }
    })");
  ValueRangeInfo Ranges = computeValueRanges(K);
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats, &Ranges);
  EXPECT_EQ(Stats.FoldedRangeTrue, 0u);
  EXPECT_EQ(Stats.FoldedRangeFalse, 0u);
  EXPECT_EQ(Stats.GuardedStatements, 1u);
  EXPECT_TRUE(Out.Body.statement(0).hasGuard());
  expectEquivalent(K, Out, 13);
}

TEST(IfConvert, NaNAdmittingGuardIsNotProvenNeverTaken) {
  // A guard whose interval is [0, 0] but may be NaN is NOT never-taken:
  // NaN != 0.0, so the interpreter takes the store. 0 * m[i] builds
  // exactly that shape (m[i] could be inf).
  Kernel K = parse(R"(
    kernel n {
      scalar float z;
      array float m[8] readonly;
      array float a[8];
      loop i = 0 .. 8 {
        z = m[i] * 0.0;
        if (z) a[i] = 1.0;
      }
    })");
  ValueRangeInfo Ranges = computeValueRanges(K);
  IfConvertStats Stats;
  Kernel Out = ifConvertKernel(K, &Stats, &Ranges);
  EXPECT_EQ(Stats.FoldedRangeFalse, 0u);
  ASSERT_EQ(Out.Body.size(), 2u);
  EXPECT_TRUE(Out.Body.statement(1).hasGuard());
}
