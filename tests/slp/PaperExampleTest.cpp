//===- tests/slp/PaperExampleTest.cpp -------------------------*- C++ -*-===//
//
// The paper's worked examples, end to end:
//  * the Figure 2 basic block through the Figure 4-9 grouping walkthrough
//    (candidate set, conflicts, the 2/3 weight, and the {S1,S2} decision),
//  * the Figure 15 code through all three transformations (original SLP,
//    Global, Global+Layout), checking the superword-reuse counts the text
//    quotes (one reuse for greedy SLP vs three for Global).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "slp/Grouping.h"
#include "slp/Pipeline.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

bool hasGroup(const GroupingResult &G, std::vector<unsigned> Members) {
  std::sort(Members.begin(), Members.end());
  for (const SimdGroup &Grp : G.Groups)
    if (Grp.Members == Members)
      return true;
  return false;
}

/// The paper's Figure 2 block (doubles pin the superword to two lanes,
/// matching the text's "one superword holds two variables"):
///   S1: V1 = V3;   S2: V2 = V5;   S3: V5 = V7;
///   S4: V3 = V1 + V1;   S5: V5 = V2 + V5;
/// Reconstructed from the (partially garbled) figure so that the stated
/// candidate set C = {{S1,S2},{S1,S3},{S4,S5}} emerges.
Kernel figure2() {
  return parse(R"(
    kernel fig2 {
      scalar double V1, V2, V3, V5, V7;
      V1 = V3 * 1.0;
      V2 = V5 * 1.0;
      V5 = V7 * 1.0;
      V3 = V1 + V1;
      V5 = V2 + V5;
    })");
}

} // namespace

TEST(PaperFigure2, CandidateStructure) {
  Kernel K = figure2();
  DependenceInfo Deps(K);
  // {S1,S2} (indices 0,1): isomorphic, independent.
  EXPECT_TRUE(Deps.independent(0, 1));
  // {S1,S3} (0,2): independent (V5 written by S3, S1 reads V3).
  EXPECT_TRUE(Deps.independent(0, 2));
  // {S2,S3} conflict: S2 reads V5, S3 writes V5 (anti dependence).
  EXPECT_FALSE(Deps.independent(1, 2));
  // {S4,S5} (3,4): independent.
  EXPECT_TRUE(Deps.independent(3, 4));
  // S4 depends on S1 (V1), S5 depends on S2 (V2) and S3 (V5).
  EXPECT_TRUE(Deps.depends(0, 3));
  EXPECT_TRUE(Deps.depends(1, 4));
  EXPECT_TRUE(Deps.depends(2, 4));
}

TEST(PaperFigure2, GroupingDecidesS1S2) {
  // The walkthrough's first decision is {S1,S2} (its lhs pack {V1,V2} is
  // reused by {S4,S5}'s operands, weight 1 vs 2/3 for {S4,S5}); the
  // second decision is then {S4,S5}.
  Kernel K = figure2();
  DependenceInfo Deps(K);
  GroupingOptions GO;
  GroupingResult G = groupStatementsGlobal(K, Deps, GO);
  EXPECT_TRUE(hasGroup(G, {0, 1})); // {S1,S2}
  EXPECT_TRUE(hasGroup(G, {3, 4})); // {S4,S5}
  // S3 conflicts with S2 and stays scalar.
  ASSERT_EQ(G.Singles.size(), 1u);
  EXPECT_EQ(G.Singles[0], 2u);
}

namespace {

/// The Figure 15(a) code, one iteration space of the paper's example.
Kernel figure15() {
  return parse(R"(
    kernel fig15 {
      scalar float a, b, c, d, g, h, q, r;
      array float A[4200] readonly;
      array float B[17000] readonly;
      array float W[8500];
      loop i = 1 .. 4097 {
        a = A[i];
        c = a * B[4*i];
        g = q * B[4*i - 2];
        b = A[i + 1];
        d = b * B[4*i + 4];
        h = r * B[4*i + 2];
        W[2*i] = d + a * c;
        W[2*i + 2] = g + r * h;
      }
    })");
}

} // namespace

TEST(PaperFigure15, GlobalFindsTheCrossGrouping) {
  // Figure 15(c): Global groups {S5,S3} and {S2,S6} so that <d,g>, <c,h>
  // and <a,r> are reused, where the greedy algorithm's {S2,S5},{S3,S6}
  // yields only the <a,b> reuse. In the unrolled kernel the pattern
  // repeats per instance; we check the per-instance pairing on the
  // pre-unroll block by pinning the datapath to two float lanes (64 bits).
  Kernel K = figure15();
  DependenceInfo Deps(K);
  GroupingOptions GO;
  GO.DatapathBits = 64; // two float lanes: no unroll interference
  GroupingResult G = groupStatementsGlobal(K, Deps, GO);
  EXPECT_TRUE(hasGroup(G, {6, 7}));       // <S7,S8>
  EXPECT_TRUE(hasGroup(G, {2, 4}));       // <g..d> == paper's <S5,S3>
  EXPECT_TRUE(hasGroup(G, {1, 5}));       // <c..h> == paper's <S2,S6>
  EXPECT_TRUE(hasGroup(G, {0, 3}));       // <a,b> loads
}

TEST(PaperFigure15, GlobalBeatsGreedyAndLayoutBeatsGlobal) {
  Kernel K = figure15();
  PipelineOptions Options;
  PipelineResult Slp = runPipeline(K, OptimizerKind::LarsenSlp, Options);
  PipelineResult Global = runPipeline(K, OptimizerKind::Global, Options);
  PipelineResult Layout =
      runPipeline(K, OptimizerKind::GlobalLayout, Options);
  EXPECT_GT(Global.improvement(), Slp.improvement());
  EXPECT_GT(Layout.improvement(), Global.improvement());
  // More superword reuses under Global than under the greedy baseline.
  EXPECT_GT(Global.Program.Stats.DirectReuses +
                Global.Program.Stats.PermutedReuses,
            Slp.Program.Stats.DirectReuses +
                Slp.Program.Stats.PermutedReuses);
  // And all three remain semantically exact.
  EXPECT_TRUE(checkEquivalence(K, Slp, 404));
  EXPECT_TRUE(checkEquivalence(K, Global, 404));
  EXPECT_TRUE(checkEquivalence(K, Layout, 404));
}

TEST(PaperFigure13, ReplicationMakesOneLoad) {
  // Figure 13/14: superword <A[4i], A[4i+3]> becomes one aligned load of
  // the replicated array <B[2i], B[2i+1]>.
  Kernel K = parse(R"(
    kernel fig13 {
      array float A[4100] readonly;
      array float Outp[2100];
      loop i = 0 .. 1024 {
        Outp[2*i]     = A[4*i] * 0.5;
        Outp[2*i + 1] = A[4*i + 3] * 0.5;
      }
    })");
  PipelineOptions Options;
  PipelineResult R = runPipeline(K, OptimizerKind::GlobalLayout, Options);
  ASSERT_TRUE(R.LayoutApplied);
  EXPECT_GE(R.Layout.ArrayPacksReplicated, 1u);
  unsigned AlignedLoads = 0, Gathers = 0;
  for (const VInst &I : R.Program.Insts) {
    if (I.Kind != VInstKind::LoadPack)
      continue;
    AlignedLoads += I.Mode == PackMode::ContiguousAligned;
    Gathers += I.Mode == PackMode::GatherScalar;
  }
  EXPECT_GE(AlignedLoads, 1u);
  EXPECT_EQ(Gathers, 0u);
  EXPECT_TRUE(checkEquivalence(K, R, 505));
}
