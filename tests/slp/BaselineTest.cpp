//===- tests/slp/BaselineTest.cpp -----------------------------*- C++ -*-===//

#include "slp/Baseline.h"

#include "ir/Parser.h"
#include "slp/Verifier.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Schedule slp_(const Kernel &K) {
  DependenceInfo D(K);
  Schedule S = larsenSlpSchedule(K, D, 128);
  EXPECT_TRUE(verifySchedule(K, D, S, 128).empty());
  return S;
}

Schedule native(const Kernel &K) {
  DependenceInfo D(K);
  Schedule S = nativeVectorizerSchedule(K, D, 128);
  EXPECT_TRUE(verifySchedule(K, D, S, 128).empty());
  return S;
}

const ScheduleItem *groupWith(const Schedule &S, unsigned Stmt) {
  for (const ScheduleItem &I : S.Items)
    if (I.isGroup() &&
        std::find(I.Lanes.begin(), I.Lanes.end(), Stmt) != I.Lanes.end())
      return &I;
  return nullptr;
}

} // namespace

TEST(LarsenSlp, SeedsAdjacentStores) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
    })");
  Schedule S = slp_(K);
  const ScheduleItem *G = groupWith(S, 0);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Lanes, (std::vector<unsigned>{0, 1}));
}

TEST(LarsenSlp, SeedsAdjacentLoads) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[8] readonly;
      a = A[4] * 2.0;
      b = A[5] * 2.0;
    })");
  EXPECT_EQ(slp_(K).numGroups(), 1u);
}

TEST(LarsenSlp, NoSeedsWithoutAdjacency) {
  // Strided accesses and one-operation statements: the greedy algorithm
  // finds no seeds and its leftover cost check refuses the pair.
  Kernel K = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      B[0] = A[0] * 2.0;
      B[2] = A[2] * 2.0;
    })");
  EXPECT_EQ(slp_(K).numGroups(), 0u);
}

TEST(LarsenSlp, DefUseChainExtension) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = a + 1.0;
      d = b + 1.0;
    })");
  Schedule S = slp_(K);
  EXPECT_EQ(S.numGroups(), 2u);
  const ScheduleItem *Consumers = groupWith(S, 2);
  ASSERT_TRUE(Consumers);
  EXPECT_EQ(Consumers->Lanes, (std::vector<unsigned>{2, 3}));
}

TEST(LarsenSlp, UseDefChainExtension) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      array float B[8];
      a = A[3] + 1.0;
      b = A[6] + 1.0;
      B[0] = a * 2.0;
      B[1] = b * 2.0;
    })");
  // Seeds on B stores, then use-def reaches the defs of a and b even
  // though A[3]/A[6] are not adjacent.
  Schedule S = slp_(K);
  EXPECT_EQ(S.numGroups(), 2u);
  EXPECT_TRUE(groupWith(S, 0));
}

TEST(LarsenSlp, CombinesContiguousPairsToFullWidth) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      B[2] = A[2] * 2.0;
      B[3] = A[3] * 2.0;
    })");
  Schedule S = slp_(K);
  ASSERT_EQ(S.numGroups(), 1u);
  EXPECT_EQ(groupWith(S, 0)->width(), 4u);
}

TEST(LarsenSlp, CombineStopsAtDatapathWidth) {
  Kernel K = parse(R"(
    kernel k { array double A[8] readonly; array double B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      B[2] = A[2] * 2.0;
      B[3] = A[3] * 2.0;
    })");
  for (const ScheduleItem &I : slp_(K).Items)
    EXPECT_LE(I.width(), 2u); // doubles: two lanes max at 128 bits
}

TEST(LarsenSlp, LeftoverPairingNeedsTwoOps) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      B[0] = A[0] * 2.0 + A[8] * 3.0;
      B[2] = A[2] * 2.0 + A[10] * 3.0;
    })");
  // Two operations per statement: the leftover pairing accepts them even
  // without adjacency.
  EXPECT_EQ(slp_(K).numGroups(), 1u);
}

TEST(LarsenSlp, BreaksPacksOnCyclicGroupDependence) {
  // {S0,S2} and {S1,S3} seeds would produce a group-level cycle:
  // S0 -> S3 (flow through x) and S1 -> S2 would require both orders.
  Kernel K = parse(R"(
    kernel k { scalar float x, y; array float A[8] readonly; array float B[8];
      B[0] = A[0] + x;
      y    = A[2] * 2.0;
      B[1] = A[1] + y;
      x    = A[3] * 2.0;
    })");
  DependenceInfo D(K);
  Schedule S = larsenSlpSchedule(K, D, 128);
  EXPECT_TRUE(verifySchedule(K, D, S, 128).empty());
}

TEST(Native, PacksPureStreams) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      B[2] = A[2] * 2.0;
      B[3] = A[3] * 2.0;
    })");
  Schedule S = native(K);
  ASSERT_EQ(S.numGroups(), 1u);
  EXPECT_EQ(groupWith(S, 0)->width(), 4u);
}

TEST(Native, AllowsBroadcastScalarReads) {
  Kernel K = parse(R"(
    kernel k { scalar float p; array float A[8] readonly; array float B[8];
      B[0] = A[0] * p;
      B[1] = A[1] * p;
    })");
  EXPECT_EQ(native(K).numGroups(), 1u);
}

TEST(Native, RejectsScalarLhs) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
    })");
  EXPECT_EQ(native(K).numGroups(), 0u);
}

TEST(Native, RejectsDifferentScalars) {
  Kernel K = parse(R"(
    kernel k { scalar float p, q; array float A[8] readonly; array float B[8];
      B[0] = A[0] * p;
      B[1] = A[1] * q;
    })");
  EXPECT_EQ(native(K).numGroups(), 0u);
}

TEST(Native, RejectsReversedStreams) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[5] * 2.0;
      B[1] = A[4] * 2.0;
    })");
  EXPECT_EQ(native(K).numGroups(), 0u);
}

TEST(Native, RejectsUnequalConstants) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 3.0;
    })");
  EXPECT_EQ(native(K).numGroups(), 0u);
}

TEST(Native, ScheduleKeepsOriginalOrder) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[8] readonly; array float B[8];
      s = A[7] + 1.0;
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
    })");
  Schedule S = native(K);
  ASSERT_EQ(S.Items.size(), 2u);
  EXPECT_EQ(S.Items[0].Lanes, (std::vector<unsigned>{0}));
  EXPECT_TRUE(S.Items[1].isGroup());
}
