//===- tests/slp/GroupingDifferentialTest.cpp -----------------*- C++ -*-===//
//
// The optimized grouping engine (bitset conflicts, incremental weights,
// scratch arenas) must be observationally identical to the retained
// reference transcription of Figure 10 — same groups, same singles, same
// downstream pipeline output — on every input. These tests drive both
// engines over randomized kernels, the synthetic grouping-scale blocks,
// and the full 16-benchmark suite.
//
//===----------------------------------------------------------------------===//

#include "slp/Grouping.h"

#include "fuzz/Fuzzer.h"
#include "slp/Pipeline.h"
#include "transform/IfConvert.h"
#include "transform/Unroll.h"
#include "vector/VectorPrinter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>

#ifndef SLP_FUZZ_CORPUS_DIR
#error "CMake must define SLP_FUZZ_CORPUS_DIR"
#endif

using namespace slp;

namespace {

std::string describeGrouping(const GroupingResult &G) {
  std::string Out;
  for (const SimdGroup &Grp : G.Groups) {
    Out += "{";
    for (unsigned M : Grp.Members)
      Out += std::to_string(M) + ",";
    Out += "} ";
  }
  Out += "| singles:";
  for (unsigned S : G.Singles)
    Out += " " + std::to_string(S);
  return Out;
}

/// Runs both engines with otherwise identical options and asserts the
/// groupings match exactly.
void expectEnginesAgree(const Kernel &K, GroupingOptions GO,
                        const std::string &Context) {
  DependenceInfo Deps(K);
  GO.Impl = GroupingImpl::Optimized;
  GroupingResult Opt = groupStatementsGlobal(K, Deps, GO);
  GO.Impl = GroupingImpl::Reference;
  GroupingResult Ref = groupStatementsGlobal(K, Deps, GO);

  ASSERT_EQ(Opt.Groups.size(), Ref.Groups.size())
      << Context << "\noptimized: " << describeGrouping(Opt)
      << "\nreference: " << describeGrouping(Ref);
  for (unsigned G = 0; G != Opt.Groups.size(); ++G)
    EXPECT_EQ(Opt.Groups[G].Members, Ref.Groups[G].Members)
        << Context << " group " << G;
  EXPECT_EQ(Opt.Singles, Ref.Singles) << Context;
}

TEST(GroupingDifferential, RandomizedKernelsAcrossWidthsAndSeeds) {
  // Vary kernel width, dependence density (via statement count over a
  // fixed symbol pool: more statements on the same arrays means more
  // overlapping references), datapath width, and the tie-break seed.
  for (uint64_t KernelSeed = 1; KernelSeed <= 40; ++KernelSeed) {
    Rng R(KernelSeed * 7919);
    RandomKernelOptions RK;
    RK.MinStatements = 2;
    RK.MaxStatements = KernelSeed % 2 ? 10 : 6;
    RK.NumArrays = KernelSeed % 3 ? 3 : 2; // fewer arrays = denser deps
    RK.NumLoops = KernelSeed % 4 == 0 ? 2 : 1;
    Kernel K = randomKernel(R, RK);
    Kernel Unrolled = unrollInnermost(K, chooseUnrollFactor(K, 4));

    GroupingOptions GO;
    GO.DatapathBits = KernelSeed % 2 ? 128 : 256;
    GO.TieBreakSeed = KernelSeed % 5 ? 1 : 7;
    expectEnginesAgree(Unrolled, GO,
                       "random kernel seed " + std::to_string(KernelSeed));
  }
}

TEST(GroupingDifferential, SyntheticBlocksAcrossConflictDensities) {
  for (unsigned N : {64u, 128u, 256u}) {
    for (double DepFraction : {0.0, 0.3, 0.8}) {
      SyntheticBlockOptions SB;
      SB.NumStatements = N;
      SB.DepFraction = DepFraction;
      Kernel K = syntheticGroupingBlock(SB);
      GroupingOptions GO;
      expectEnginesAgree(K, GO,
                         "synthetic block n=" + std::to_string(N) +
                             " dep=" + std::to_string(DepFraction));
    }
  }
}

TEST(GroupingDifferential, AblationModesAgreeToo) {
  SyntheticBlockOptions SB;
  SB.NumStatements = 128;
  Kernel K = syntheticGroupingBlock(SB);

  GroupingOptions NoReuse;
  NoReuse.UseReuseWeight = false;
  expectEnginesAgree(K, NoReuse, "reuse weight disabled");

  GroupingOptions NoQuality;
  NoQuality.PackQualityEpsilon = 0;
  expectEnginesAgree(K, NoQuality, "pack-quality tie-break disabled");
}

TEST(GroupingDifferential, FullWorkloadSuiteMatchesReference) {
  for (const Workload &W : standardWorkloads()) {
    Kernel Unrolled =
        unrollInnermost(W.TheKernel, chooseUnrollFactor(W.TheKernel, 4));
    GroupingOptions GO;
    expectEnginesAgree(Unrolled, GO, "workload " + W.Name);
  }
}

/// End-to-end: the whole module pipeline must be bit-identical no matter
/// which engine runs grouping and how many worker threads the driver uses.
/// (Statistics are not compared — the engines intentionally report
/// different telemetry counts.)
TEST(GroupingDifferential, PipelineBitIdenticalAcrossEnginesAndThreads) {
  std::vector<Kernel> Module;
  for (const Workload &W : standardWorkloads())
    Module.push_back(W.TheKernel);

  PipelineOptions RefOpts;
  RefOpts.GroupingEngine = GroupingImpl::Reference;
  RefOpts.Threads = 1;
  ModulePipelineResult Ref =
      runPipelineOverModule(Module, OptimizerKind::Global, RefOpts);

  PipelineOptions OptOpts;
  OptOpts.GroupingEngine = GroupingImpl::Optimized;
  OptOpts.Threads = 4;
  ModulePipelineResult Opt =
      runPipelineOverModule(Module, OptimizerKind::Global, OptOpts);

  ASSERT_EQ(Opt.PerKernel.size(), Ref.PerKernel.size());
  EXPECT_DOUBLE_EQ(Opt.ScalarCycles, Ref.ScalarCycles);
  EXPECT_DOUBLE_EQ(Opt.OptimizedCycles, Ref.OptimizedCycles);
  for (unsigned I = 0; I != Opt.PerKernel.size(); ++I) {
    const PipelineResult &X = Opt.PerKernel[I];
    const PipelineResult &Y = Ref.PerKernel[I];
    EXPECT_EQ(X.TransformationApplied, Y.TransformationApplied) << I;
    ASSERT_EQ(X.TheSchedule.Items.size(), Y.TheSchedule.Items.size()) << I;
    for (unsigned S = 0; S != X.TheSchedule.Items.size(); ++S)
      EXPECT_EQ(X.TheSchedule.Items[S].Lanes, Y.TheSchedule.Items[S].Lanes)
          << "kernel " << I << " item " << S;
    // The printed program faithfully renders every instruction, so string
    // equality is program equality.
    EXPECT_EQ(printVectorProgram(X.Final, X.Program),
              printVectorProgram(Y.Final, Y.Program))
        << I;
  }
}

// Predicated kernels: guards participate in the isomorphism signatures and
// the mask operands become variable packs, so both engines must agree on
// guarded inputs exactly as they do on straight-line ones.
TEST(GroupingDifferential, PredicatedRandomKernelsAgree) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Rng R(Seed * 104729);
    RandomKernelOptions RK;
    RK.GuardProbability = 0.5;
    RK.NumLoops = Seed % 3 == 0 ? 2 : 1;
    Kernel K = randomKernel(R, RK);
    Kernel Conv = ifConvertKernel(K);
    Kernel Unrolled = unrollInnermost(Conv, chooseUnrollFactor(Conv, 4));
    GroupingOptions GO;
    GO.DatapathBits = Seed % 2 ? 128 : 256;
    expectEnginesAgree(Unrolled, GO,
                       "predicated kernel seed " + std::to_string(Seed));
  }
}

TEST(GroupingDifferential, PredicatedWorkloadSuiteMatchesReference) {
  for (const Workload &W : predicatedWorkloads()) {
    Kernel Conv = ifConvertKernel(W.TheKernel);
    Kernel Unrolled = unrollInnermost(Conv, chooseUnrollFactor(Conv, 4));
    GroupingOptions GO;
    expectEnginesAgree(Unrolled, GO, "predicated workload " + W.Name);
  }
}

// --- Exact engine -------------------------------------------------------
//
// The Exact engine may legitimately pick a different (never lighter)
// packing than the greedy engines, so it is NOT held to bit-identity.
// Instead it must be *semantically* interchangeable: every workload
// still passes the static translation validator and executes
// equivalently to the scalar reference, and every recorded fuzz repro
// still replays clean with grouping forced to exact.

/// Runs the full Global pipeline under one grouping engine and demands
/// the two independent oracles pass: the static verifier accepts the
/// emitted program and vector execution matches scalar execution.
void expectPipelineSemanticallySound(const Kernel &K, GroupingImpl Impl,
                                     const std::string &Context) {
  PipelineOptions Options;
  Options.GroupingEngine = Impl;
  Options.VerifyVector = true;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, Options);
  EXPECT_TRUE(R.Verified) << Context << " under "
                          << groupingImplName(Impl);
  std::string Error;
  for (uint64_t Seed : {1234u, 99u})
    EXPECT_TRUE(checkEquivalence(K, R, Seed, &Error))
        << Context << " under " << groupingImplName(Impl) << ": " << Error;
}

TEST(GroupingDifferential, ExactEngineSoundOnFullWorkloadSuite) {
  for (const Workload &W : standardWorkloads())
    expectPipelineSemanticallySound(W.TheKernel, GroupingImpl::Exact,
                                    "workload " + W.Name);
}

TEST(GroupingDifferential, ExactEngineSoundOnPredicatedSuite) {
  for (const Workload &W : predicatedWorkloads())
    expectPipelineSemanticallySound(W.TheKernel, GroupingImpl::Exact,
                                    "predicated workload " + W.Name);
}

/// Exact's selection must never be lighter than greedy's on any workload
/// it proves optimal (the per-commit regret invariant; the CI bench gate
/// tracks the same ratio over time).
TEST(GroupingDifferential, ExactSelectionAtLeastGreedyOnWorkloads) {
  for (const Workload &W : standardWorkloads()) {
    Kernel Unrolled =
        unrollInnermost(W.TheKernel, chooseUnrollFactor(W.TheKernel, 4));
    DependenceInfo Deps(Unrolled);
    GroupingOptions GO;
    GroupingTelemetry TOpt, TExact;
    GO.Impl = GroupingImpl::Optimized;
    groupStatementsGlobal(Unrolled, Deps, GO, &TOpt);
    GO.Impl = GroupingImpl::Exact;
    groupStatementsGlobal(Unrolled, Deps, GO, &TExact);
    if (TExact.ExactProvedOptimal) {
      EXPECT_GE(TExact.SelectionWeight, TOpt.SelectionWeight - 1e-9)
          << W.Name;
    }
  }
}

/// Every recorded fuzz repro replays clean with grouping forced to the
/// exact engine: the reduced kernels that once broke the pipeline are
/// exactly the inputs most likely to trip a new selection strategy.
TEST(GroupingDifferential, CorpusReplaysPassUnderExactEngine) {
  std::vector<std::string> Files = listCorpusFiles(SLP_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(Files.empty())
      << "no corpus cases under " << SLP_FUZZ_CORPUS_DIR;
  for (const std::string &Path : Files) {
    std::string Text;
    ASSERT_TRUE(readFile(Path, Text)) << Path;
    FuzzCase Case;
    std::string Error;
    ASSERT_TRUE(parseFuzzCase(Text, Case, &Error)) << Path << ": " << Error;
    Case.Config.Grouping = GroupingImpl::Exact;
    EXPECT_TRUE(runFuzzCase(Case, &Error)) << Path << ": " << Error;
  }
}

/// End-to-end on the branchy suite: masked vector programs must be
/// bit-identical across grouping engines and thread counts.
TEST(GroupingDifferential, PredicatedPipelineBitIdenticalAcrossEngines) {
  std::vector<Kernel> Module;
  for (const Workload &W : predicatedWorkloads())
    Module.push_back(W.TheKernel);

  PipelineOptions RefOpts;
  RefOpts.GroupingEngine = GroupingImpl::Reference;
  RefOpts.Threads = 1;
  ModulePipelineResult Ref =
      runPipelineOverModule(Module, OptimizerKind::Global, RefOpts);

  PipelineOptions OptOpts;
  OptOpts.GroupingEngine = GroupingImpl::Optimized;
  OptOpts.Threads = 4;
  ModulePipelineResult Opt =
      runPipelineOverModule(Module, OptimizerKind::Global, OptOpts);

  ASSERT_EQ(Opt.PerKernel.size(), Ref.PerKernel.size());
  for (unsigned I = 0; I != Opt.PerKernel.size(); ++I) {
    const PipelineResult &X = Opt.PerKernel[I];
    const PipelineResult &Y = Ref.PerKernel[I];
    EXPECT_EQ(X.TransformationApplied, Y.TransformationApplied) << I;
    EXPECT_EQ(printVectorProgram(X.Final, X.Program),
              printVectorProgram(Y.Final, Y.Program))
        << I;
  }
}

} // namespace
