//===- tests/slp/GroupingTest.cpp -----------------------------*- C++ -*-===//

#include "slp/Grouping.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

GroupingResult group(const Kernel &K, unsigned Bits = 128) {
  DependenceInfo Deps(K);
  GroupingOptions GO;
  GO.DatapathBits = Bits;
  return groupStatementsGlobal(K, Deps, GO);
}

bool hasGroup(const GroupingResult &G, std::vector<unsigned> Members) {
  std::sort(Members.begin(), Members.end());
  for (const SimdGroup &Grp : G.Groups)
    if (Grp.Members == Members)
      return true;
  return false;
}

/// Every statement appears exactly once across groups and singles.
void expectPartition(const GroupingResult &G, unsigned NumStmts) {
  std::set<unsigned> Seen;
  unsigned Count = 0;
  for (const SimdGroup &Grp : G.Groups)
    for (unsigned S : Grp.Members) {
      EXPECT_TRUE(Seen.insert(S).second) << "statement " << S << " repeated";
      ++Count;
    }
  for (unsigned S : G.Singles) {
    EXPECT_TRUE(Seen.insert(S).second);
    ++Count;
  }
  EXPECT_EQ(Count, NumStmts);
}

} // namespace

TEST(Grouping, PairsIsomorphicIndependents) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = c * 2.0;
      b = d * 3.0;
    })");
  GroupingResult G = group(K);
  EXPECT_TRUE(hasGroup(G, {0, 1}));
  expectPartition(G, 2);
}

TEST(Grouping, RespectsDependences) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = a * 2.0;
      a = b * 3.0;
    })");
  GroupingResult G = group(K);
  EXPECT_TRUE(G.Groups.empty());
  EXPECT_EQ(G.Singles.size(), 3u);
}

TEST(Grouping, RespectsDatapathWidth) {
  // Eight isomorphic float statements: at 128 bits only four fit per group.
  Kernel K = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      loop i = 0 .. 2 {
        B[8*i]   = A[8*i]   * 2.0;
        B[8*i+1] = A[8*i+1] * 2.0;
        B[8*i+2] = A[8*i+2] * 2.0;
        B[8*i+3] = A[8*i+3] * 2.0;
        B[8*i+4] = A[8*i+4] * 2.0;
        B[8*i+5] = A[8*i+5] * 2.0;
        B[8*i+6] = A[8*i+6] * 2.0;
        B[8*i+7] = A[8*i+7] * 2.0;
      }
    })");
  for (const SimdGroup &Grp : group(K, 128).Groups)
    EXPECT_LE(Grp.size(), 4u);
  // At 256 bits the iterative grouping should reach width 8.
  GroupingResult G256 = group(K, 256);
  unsigned MaxWidth = 0;
  for (const SimdGroup &Grp : G256.Groups)
    MaxWidth = std::max(MaxWidth, Grp.size());
  EXPECT_EQ(MaxWidth, 8u);
  expectPartition(G256, 8);
}

TEST(Grouping, DoubleLanesAreNarrower) {
  Kernel K = parse(R"(
    kernel k { scalar double a, b, c, d;
      a = a * 2.0;
      b = b * 2.0;
      c = c * 2.0;
      d = d * 2.0;
    })");
  for (const SimdGroup &Grp : group(K, 128).Groups)
    EXPECT_LE(Grp.size(), 2u); // 128 bits hold two doubles
}

TEST(Grouping, ReuseDrivesPartnerChoice) {
  // The paper's Figure 15 pattern: grouping {c,h},{g,d} (by reuse) beats
  // the in-order pairing {c,d},{g,h}. Doubles keep the lane count at two
  // so the iterative re-grouping cannot merge the pairs further.
  Kernel K = parse(R"(
    kernel k { scalar double a, b, c, d, g, h, q, r;
      array double V[64] readonly; array double W[64];
      c = a * V[0];
      g = q * V[2];
      d = b * V[4];
      h = r * V[6];
      W[0] = d + a * c;
      W[2] = g + r * h;
    })");
  GroupingResult G = group(K);
  // The consumer pair must exist, and its operand packs {d,g},{a,r},{c,h}
  // should be produced by matching producer groups.
  EXPECT_TRUE(hasGroup(G, {4, 5}));
  EXPECT_TRUE(hasGroup(G, {0, 3})); // c with h
  EXPECT_TRUE(hasGroup(G, {1, 2})); // g with d
  expectPartition(G, 6);
}

TEST(Grouping, NonIsomorphicNeverGroups) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = c + 2.0;
      b = d * 2.0;
    })");
  GroupingResult G = group(K);
  EXPECT_TRUE(G.Groups.empty());
}

TEST(Grouping, NeverCreatesCyclicGroupDependences) {
  // With dep 0 -> 1 and dep 2 -> 3, the groups {0,3} and {1,2} would
  // depend on each other cyclically and could never be scheduled.
  Kernel K = parse(R"(
    kernel k { scalar float a, b, y1, y2, x, z;
      a = x * 2.0;
      y1 = a * 3.0;
      b = z * 2.0;
      y2 = b * 3.0;
    })");
  DependenceInfo Deps(K);
  GroupingOptions GO;
  GroupingResult G = groupStatementsGlobal(K, Deps, GO);
  EXPECT_FALSE(hasGroup(G, {0, 3}) && hasGroup(G, {1, 2}));
  expectPartition(G, 4);
}

TEST(Grouping, ContiguityBreaksReuseTies) {
  // No reuse anywhere: prefer the partner giving contiguous packs.
  Kernel K = parse(R"(
    kernel k { array float A[64] readonly; array float B[64];
      loop i = 0 .. 8 {
        B[4*i]   = A[4*i] * 2.0;
        B[4*i+1] = A[4*i+1] * 2.0;
      }
    })");
  GroupingResult G = group(K);
  ASSERT_EQ(G.Groups.size(), 1u);
  EXPECT_EQ(G.Groups[0].Members.size(), 2u);
}

TEST(Grouping, EmptyBlock) {
  Kernel K = parse("kernel k { scalar float a; a = 1.0; }");
  GroupingResult G = group(K);
  EXPECT_TRUE(G.Groups.empty());
  EXPECT_EQ(G.Singles.size(), 1u);
}

TEST(Grouping, LanesForHelper) {
  EXPECT_EQ(lanesFor(ScalarType::Float32, 128), 4u);
  EXPECT_EQ(lanesFor(ScalarType::Float64, 128), 2u);
  EXPECT_EQ(lanesFor(ScalarType::Float32, 1024), 32u);
  EXPECT_EQ(lanesFor(ScalarType::Int64, 256), 4u);
}

TEST(Grouping, DeterministicAcrossRuns) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      loop i = 0 .. 8 {
        B[4*i]   = A[4*i] + 1.0;
        B[4*i+1] = A[4*i+1] + 1.0;
        B[4*i+2] = A[4*i+2] + 1.0;
        B[4*i+3] = A[4*i+3] + 1.0;
      }
    })");
  GroupingResult G1 = group(K);
  GroupingResult G2 = group(K);
  ASSERT_EQ(G1.Groups.size(), G2.Groups.size());
  for (unsigned I = 0; I != G1.Groups.size(); ++I)
    EXPECT_EQ(G1.Groups[I].Members, G2.Groups[I].Members);
}
