//===- tests/slp/SchedulingTest.cpp ---------------------------*- C++ -*-===//

#include "slp/Scheduling.h"

#include "ir/Parser.h"
#include "slp/Verifier.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Schedule scheduleOf(const Kernel &K, std::vector<SimdGroup> Groups,
                    std::vector<unsigned> Singles) {
  DependenceInfo Deps(K);
  GroupingResult G;
  G.Groups = std::move(Groups);
  G.Singles = std::move(Singles);
  Schedule S = scheduleGroups(K, Deps, G);
  EXPECT_TRUE(verifySchedule(K, Deps, S, 128).empty());
  return S;
}

const ScheduleItem *findGroupWith(const Schedule &S, unsigned Stmt) {
  for (const ScheduleItem &I : S.Items)
    if (I.isGroup() &&
        std::find(I.Lanes.begin(), I.Lanes.end(), Stmt) != I.Lanes.end())
      return &I;
  return nullptr;
}

} // namespace

TEST(Scheduling, ScalarScheduleCoversAll) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; a = 1.0; b = 2.0; })");
  Schedule S = scalarSchedule(K);
  ASSERT_EQ(S.Items.size(), 2u);
  EXPECT_EQ(S.numGroups(), 0u);
}

TEST(Scheduling, PreservesInterGroupDependences) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = a + 1.0;
      d = b + 1.0;
    })");
  Schedule S = scheduleOf(K, {SimdGroup{{0, 1}}, SimdGroup{{2, 3}}}, {});
  ASSERT_EQ(S.Items.size(), 2u);
  // Producer group must come first.
  EXPECT_TRUE(std::find(S.Items[0].Lanes.begin(), S.Items[0].Lanes.end(),
                        0u) != S.Items[0].Lanes.end());
}

TEST(Scheduling, LaneOrderFollowsLiveSet) {
  // Producer defines <a,b>; the consumer group's operands appear as (b,a)
  // unless the scheduler aligns lanes for a direct reuse.
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = b + 1.0;
      d = a + 1.0;
    })");
  Schedule S = scheduleOf(K, {SimdGroup{{0, 1}}, SimdGroup{{2, 3}}}, {});
  const ScheduleItem *Producer = findGroupWith(S, 0);
  const ScheduleItem *Consumer = findGroupWith(S, 2);
  ASSERT_TRUE(Producer && Consumer);
  // Producer lanes (a,b) in ascending-memory order 0,1; consumer should
  // pick lane order (3,2) so its operand pack reads (a,b) directly.
  EXPECT_EQ(Producer->Lanes, (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(Consumer->Lanes, (std::vector<unsigned>{3, 2}));
}

TEST(Scheduling, ContiguousStorePreferredWithoutLiveReuse) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      loop i = 0 .. 2 {
        B[4*i + 1] = A[4*i + 1] * 2.0;
        B[4*i]     = A[4*i] * 2.0;
      }
    })");
  // Members listed as {0,1}; ascending memory order is (1, 0).
  Schedule S = scheduleOf(K, {SimdGroup{{0, 1}}}, {});
  const ScheduleItem *G = findGroupWith(S, 0);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Lanes, (std::vector<unsigned>{1, 0}));
}

TEST(Scheduling, SinglesEmittedBetweenGroupsRespectDeps) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, s; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      s = a + b;
    })");
  Schedule S = scheduleOf(K, {SimdGroup{{0, 1}}}, {2});
  ASSERT_EQ(S.Items.size(), 2u);
  EXPECT_TRUE(S.Items[0].isGroup());
  EXPECT_EQ(S.Items[1].Lanes, (std::vector<unsigned>{2}));
}

TEST(Scheduling, ReadySinglesFirstInOriginalOrder) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = 1.0;
      b = 2.0;
      c = 3.0;
    })");
  Schedule S = scheduleOf(K, {}, {0, 1, 2});
  ASSERT_EQ(S.Items.size(), 3u);
  EXPECT_EQ(S.Items[0].Lanes[0], 0u);
  EXPECT_EQ(S.Items[1].Lanes[0], 1u);
  EXPECT_EQ(S.Items[2].Lanes[0], 2u);
}

TEST(Scheduling, ReuseCountPrefersReusingGroupNext) {
  // Two independent consumer groups; the one reusing the live packs
  // should be scheduled immediately after its producer.
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d, e, f;
      array float A[16] readonly; array float B[16] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      e = B[8] + 1.0;
      f = B[9] + 1.0;
      c = a * 3.0;
      d = b * 3.0;
    })");
  Schedule S = scheduleOf(
      K, {SimdGroup{{0, 1}}, SimdGroup{{2, 3}}, SimdGroup{{4, 5}}}, {});
  // After <a,b> the consumer {4,5} (uses a,b) has one live reuse; {2,3}
  // has none. Expect {4,5} scheduled before {2,3}.
  unsigned PosC = 0, PosE = 0;
  for (unsigned I = 0; I != S.Items.size(); ++I) {
    if (findGroupWith(S, 4) == &S.Items[I])
      PosC = I;
    if (findGroupWith(S, 2) == &S.Items[I])
      PosE = I;
  }
  EXPECT_LT(PosC, PosE);
}

TEST(Scheduling, WidthFourLaneAlignment) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d, w, x, y, z;
      array float A[16] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = A[2] * 2.0;
      d = A[3] * 2.0;
      w = c + 1.0;
      x = a + 1.0;
      y = d + 1.0;
      z = b + 1.0;
    })");
  Schedule S =
      scheduleOf(K, {SimdGroup{{0, 1, 2, 3}}, SimdGroup{{4, 5, 6, 7}}}, {});
  const ScheduleItem *Consumer = findGroupWith(S, 4);
  ASSERT_TRUE(Consumer);
  // Align to the producer's (a,b,c,d): statements using a,b,c,d in that
  // order are 5,7,4,6.
  EXPECT_EQ(Consumer->Lanes, (std::vector<unsigned>{5, 7, 4, 6}));
}

TEST(Scheduling, GroupWritesInvalidateLivePacks) {
  // The pack <A[0],A[1]> dies when the second group overwrites A[0]/A[1];
  // the schedule must still be valid (semantics checked elsewhere).
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[8];
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      A[0] = 5.0;
      A[1] = 6.0;
    })");
  Schedule S = scheduleOf(K, {SimdGroup{{0, 1}}, SimdGroup{{2, 3}}}, {});
  EXPECT_EQ(S.Items.size(), 2u);
}

TEST(Scheduling, EveryStatementExactlyOnce) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = 1.0;
      b = 2.0;
      c = a + b;
    })");
  Schedule S = scheduleOf(K, {SimdGroup{{0, 1}}}, {2});
  unsigned Total = 0;
  for (const ScheduleItem &I : S.Items)
    Total += I.width();
  EXPECT_EQ(Total, 3u);
}
