//===- tests/slp/GroupingExactTest.cpp ------------------------*- C++ -*-===//
//
// The Exact grouping engine's branch-and-bound claims provably max-weight
// per-round selections. These tests hold it to that claim: a brute-force
// enumerator (independent of the engine's search, bounds, and bitsets)
// recomputes the optimum over every conflict-free acyclic selection on
// random small kernels; a hand-built kernel pins a case where the greedy
// Figure 10 selection is provably suboptimal; and the budget/fallback
// semantics (zero budget == the Optimized engine bit-for-bit, proved-
// optimal flag only without exhaustion, determinism across threads and
// repeats) are exercised directly.
//
//===----------------------------------------------------------------------===//

#include "slp/Grouping.h"

#include "ir/Parser.h"
#include "slp/Pipeline.h"
#include "transform/IfConvert.h"
#include "transform/Unroll.h"
#include "vector/VectorPrinter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <string>
#include <vector>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

/// Independent transcription of the selection-weight objective: process
/// the selected candidates in order; every pack-key occurrence whose key
/// is already present scores one reuse, plus epsilon times pack quality.
/// (The total is order-independent for a fixed set: it equals total
/// occurrences minus distinct keys present.)
double selectionWeight(const GroupingOptions &GO,
                       const std::vector<FirstRoundCandidate> &Cands,
                       const std::vector<unsigned> &Selected) {
  std::map<std::string, unsigned> Count;
  double W = 0;
  for (unsigned CI : Selected) {
    if (GO.UseReuseWeight)
      for (const std::string &Key : Cands[CI].PackKeys)
        if (Count[Key]++ > 0)
          W += 1.0;
    W += GO.PackQualityEpsilon * Cands[CI].PackQuality;
  }
  return W;
}

/// Independent acyclicity check: contract every selected pair to one node
/// (unselected statements stay single), add the dependence edges, and
/// Kahn-sort. The grouped block is schedulable iff the contracted graph
/// is a DAG.
bool selectionAcyclic(const Kernel &K, const DependenceInfo &Deps,
                      const std::vector<FirstRoundCandidate> &Cands,
                      const std::vector<unsigned> &Selected) {
  unsigned N = K.Body.size();
  std::vector<unsigned> NodeOf(N);
  for (unsigned S = 0; S != N; ++S)
    NodeOf[S] = S;
  for (unsigned CI : Selected)
    NodeOf[Cands[CI].StmtB] = NodeOf[Cands[CI].StmtA];
  std::vector<std::vector<unsigned>> Succ(N);
  std::vector<unsigned> InDeg(N, 0);
  for (const Dep &D : Deps.dependences()) {
    unsigned A = NodeOf[D.Src], B = NodeOf[D.Dst];
    if (A == B)
      continue;
    Succ[A].push_back(B);
    ++InDeg[B];
  }
  std::queue<unsigned> Work;
  for (unsigned V = 0; V != N; ++V)
    if (InDeg[V] == 0)
      Work.push(V);
  unsigned Popped = 0;
  while (!Work.empty()) {
    unsigned V = Work.front();
    Work.pop();
    ++Popped;
    for (unsigned S : Succ[V])
      if (--InDeg[S] == 0)
        Work.push(S);
  }
  return Popped == N;
}

/// Recursively enumerates every conflict-free subset of candidates (a
/// partial matching over statements) and returns the max weight over the
/// acyclic ones. The recursion branches only where a candidate is
/// includable, so the tree has exactly one leaf per matching.
double bruteForceOptimum(const Kernel &K, const DependenceInfo &Deps,
                         const GroupingOptions &GO,
                         const std::vector<FirstRoundCandidate> &Cands,
                         unsigned Idx, std::vector<bool> &Used,
                         std::vector<unsigned> &Selected) {
  if (Idx == Cands.size()) {
    if (!selectionAcyclic(K, Deps, Cands, Selected))
      return -1;
    return selectionWeight(GO, Cands, Selected);
  }
  double Best =
      bruteForceOptimum(K, Deps, GO, Cands, Idx + 1, Used, Selected);
  const FirstRoundCandidate &C = Cands[Idx];
  if (!Used[C.StmtA] && !Used[C.StmtB]) {
    Used[C.StmtA] = Used[C.StmtB] = true;
    Selected.push_back(Idx);
    double W =
        bruteForceOptimum(K, Deps, GO, Cands, Idx + 1, Used, Selected);
    Selected.pop_back();
    Used[C.StmtA] = Used[C.StmtB] = false;
    if (W > Best)
      Best = W;
  }
  return Best;
}

/// Aggregate evidence that the random cross-checks are not vacuous:
/// across all seeds, some kernels must offer several candidates and some
/// optima must select pairs / score reuse.
struct CrossCheckCoverage {
  unsigned KernelsWithCandidates = 0;
  unsigned NontrivialOptima = 0; ///< optimum selected at least one pair
};

/// Cross-checks one kernel: the branch-and-bound's first-round weight must
/// equal the enumerated optimum, and its reported selection must be
/// conflict-free, acyclic, and worth exactly the reported weight.
void expectExactMatchesBruteForce(const Kernel &K, const GroupingOptions &GO,
                                  const std::string &Context,
                                  CrossCheckCoverage *Cov = nullptr) {
  ASSERT_LE(K.Body.size(), 12u) << Context << ": kernel too large to "
                                   "enumerate";
  DependenceInfo Deps(K);
  std::vector<FirstRoundCandidate> Cands =
      enumerateFirstRoundCandidates(K, Deps, GO);

  ExactRoundResult R = solveFirstRoundExact(K, Deps, GO);
  ASSERT_FALSE(R.Exhausted)
      << Context << ": default budget exhausted on a tiny kernel";

  std::vector<bool> Used(K.Body.size(), false);
  std::vector<unsigned> Selected;
  double Optimum =
      bruteForceOptimum(K, Deps, GO, Cands, 0, Used, Selected);
  ASSERT_GE(Optimum, 0) << Context << ": even the empty selection "
                           "should be acyclic";
  EXPECT_NEAR(R.Weight, Optimum, 1e-9)
      << Context << " (" << Cands.size() << " candidates)";

  // The reported pairs must form a valid selection worth the reported
  // weight (not just any set achieving the optimum numerically).
  std::vector<unsigned> Reported;
  std::vector<bool> Taken(K.Body.size(), false);
  for (auto [A, B] : R.Pairs) {
    bool Found = false;
    for (unsigned CI = 0; CI != Cands.size(); ++CI)
      if ((Cands[CI].StmtA == A && Cands[CI].StmtB == B) ||
          (Cands[CI].StmtA == B && Cands[CI].StmtB == A)) {
        Reported.push_back(CI);
        Found = true;
        break;
      }
    ASSERT_TRUE(Found) << Context << ": reported pair (" << A << "," << B
                       << ") is not a candidate";
    EXPECT_FALSE(Taken[A]) << Context;
    EXPECT_FALSE(Taken[B]) << Context;
    Taken[A] = Taken[B] = true;
  }
  EXPECT_TRUE(selectionAcyclic(K, Deps, Cands, Reported)) << Context;
  EXPECT_NEAR(selectionWeight(GO, Cands, Reported), R.Weight, 1e-9)
      << Context;

  if (Cov) {
    if (!Cands.empty())
      ++Cov->KernelsWithCandidates;
    if (!R.Pairs.empty())
      ++Cov->NontrivialOptima;
  }
}

TEST(GroupingExact, BruteForceCrossCheckOnRandomKernels) {
  CrossCheckCoverage Cov;
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    Rng R(Seed * 6151);
    RandomKernelOptions RK;
    RK.MinStatements = 2;
    // Unrolling is what manufactures isomorphic statements (as in the
    // real pipeline); keep the post-unroll block within enumeration reach.
    RK.MaxStatements = Seed % 2 ? 5 : 3;
    RK.NumArrays = Seed % 3 ? 3 : 2;
    RK.NumLoops = 1;
    Kernel K = unrollInnermost(randomKernel(R, RK), Seed % 2 ? 2 : 4);
    if (K.Body.size() > 12)
      continue;

    GroupingOptions GO;
    GO.DatapathBits = Seed % 2 ? 128 : 256;
    // Alternate the objective: default epsilon, the paper's reuse-only
    // weight, and quality-only (the ablation configuration).
    if (Seed % 3 == 1)
      GO.PackQualityEpsilon = 0;
    if (Seed % 7 == 0)
      GO.UseReuseWeight = false;
    expectExactMatchesBruteForce(K, GO,
                                 "random kernel seed " +
                                     std::to_string(Seed),
                                 &Cov);
  }
  // The sweep must actually exercise the search, not just empty kernels.
  EXPECT_GE(Cov.KernelsWithCandidates, 20u);
  EXPECT_GE(Cov.NontrivialOptima, 10u);
}

TEST(GroupingExact, BruteForceCrossCheckOnPredicatedKernels) {
  CrossCheckCoverage Cov;
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Rng R(Seed * 7927);
    RandomKernelOptions RK;
    RK.MinStatements = 2;
    RK.MaxStatements = 4;
    RK.GuardProbability = 0.5;
    Kernel K =
        unrollInnermost(ifConvertKernel(randomKernel(R, RK)), 2);
    if (K.Body.size() > 12)
      continue;
    GroupingOptions GO;
    expectExactMatchesBruteForce(K, GO,
                                 "predicated kernel seed " +
                                     std::to_string(Seed),
                                 &Cov);
  }
  EXPECT_GE(Cov.KernelsWithCandidates, 8u);
  EXPECT_GE(Cov.NontrivialOptima, 4u);
}

/// The pinned greedy-suboptimal case. After if-conversion and 4x
/// unrolling, the four guarded copies are pairwise isomorphic with no
/// superword reuse between any pair — so the greedy auxiliary-graph
/// weights of all six candidate pairs tie at their epsilon-scaled pack
/// quality, and Figure 10's "pick the max-weight candidate" commits to a
/// strided pairing whose leftover partner pairs are also strided. The
/// optimal selection is the two *contiguous* pairings ({i,i+1},{i+2,i+3}),
/// which the exact engine proves with a handful of nodes. The final
/// grouping (one 4-wide group after widening) coincides; the committed
/// selection weight — the objective CI tracks via bench_grouping_scale
/// --regret — does not. This distilled kernel is why the memcpy_cond
/// workload shows the suite's largest heuristic regret (~1.23x).
TEST(GroupingExact, GreedyProvablySuboptimalOnConditionalCopy) {
  Kernel K = parse(R"(
    kernel trap {
      array float src[64] readonly;
      array float msk[64] readonly;
      array float dst[64];
      loop i = 0 .. 16 {
        if (msk[i] > 0.0) dst[i] = src[i];
      }
    })");
  Kernel Conv = ifConvertKernel(K);
  Kernel Unrolled = unrollInnermost(Conv, 4);

  DependenceInfo Deps(Unrolled);
  GroupingOptions GO;

  GroupingTelemetry Greedy;
  GO.Impl = GroupingImpl::Optimized;
  GroupingResult ROpt = groupStatementsGlobal(Unrolled, Deps, GO, &Greedy);

  GroupingTelemetry Exact;
  GO.Impl = GroupingImpl::Exact;
  GroupingResult RExact = groupStatementsGlobal(Unrolled, Deps, GO, &Exact);

  ASSERT_EQ(Exact.ExactProvedOptimal, 1u);
  ASSERT_EQ(Exact.ExactFallbacks, 0u);
  EXPECT_GT(Exact.ExactNodes, 0u);
  // Strictly heavier selection: the greedy heuristic is provably
  // suboptimal here, not merely tie-broken differently.
  EXPECT_GT(Exact.SelectionWeight, Greedy.SelectionWeight + 1e-6);

  // Both engines still cover all four statements with one datapath-wide
  // group; the regret is in the committed selection weight, not the
  // final shape.
  ASSERT_EQ(RExact.Groups.size(), 1u);
  ASSERT_EQ(ROpt.Groups.size(), 1u);
  EXPECT_EQ(RExact.Groups[0].Members.size(), 4u);

  // And the first round alone confirms it against brute force.
  expectExactMatchesBruteForce(Unrolled, GroupingOptions(),
                               "conditional-copy trap");
}

TEST(GroupingExact, ZeroBudgetFallsBackToGreedyBitIdentically) {
  for (const Workload &W : standardWorkloads()) {
    Kernel Unrolled =
        unrollInnermost(W.TheKernel, chooseUnrollFactor(W.TheKernel, 4));
    DependenceInfo Deps(Unrolled);

    GroupingOptions GO;
    GO.Impl = GroupingImpl::Optimized;
    GroupingTelemetry TOpt;
    GroupingResult Opt = groupStatementsGlobal(Unrolled, Deps, GO, &TOpt);

    GO.Impl = GroupingImpl::Exact;
    GO.ExactNodeBudget = 0;
    GroupingTelemetry TExact;
    GroupingResult Exact = groupStatementsGlobal(Unrolled, Deps, GO, &TExact);

    // Every round with candidates exhausts the zero budget immediately
    // and falls back to the greedy selection, which must reproduce the
    // Optimized engine exactly: same groups, same singles, same weight.
    EXPECT_EQ(TExact.ExactProvedOptimal, 0u) << W.Name;
    EXPECT_GE(TExact.ExactFallbacks, 1u) << W.Name;
    EXPECT_EQ(TExact.ExactNodes, 0u) << W.Name;
    ASSERT_EQ(Exact.Groups.size(), Opt.Groups.size()) << W.Name;
    for (unsigned G = 0; G != Exact.Groups.size(); ++G)
      EXPECT_EQ(Exact.Groups[G].Members, Opt.Groups[G].Members)
          << W.Name << " group " << G;
    EXPECT_EQ(Exact.Singles, Opt.Singles) << W.Name;
    EXPECT_DOUBLE_EQ(TExact.SelectionWeight, TOpt.SelectionWeight) << W.Name;
  }
}

TEST(GroupingExact, ProvedOptimalOnlyWithoutExhaustion) {
  Kernel K = parse(R"(
    kernel trap {
      array float src[64] readonly;
      array float msk[64] readonly;
      array float dst[64];
      loop i = 0 .. 16 {
        if (msk[i] > 0.0) dst[i] = src[i];
      }
    })");
  Kernel Unrolled = unrollInnermost(ifConvertKernel(K), 4);
  DependenceInfo Deps(Unrolled);

  GroupingOptions GO;
  GO.Impl = GroupingImpl::Exact;
  GroupingTelemetry Full;
  groupStatementsGlobal(Unrolled, Deps, GO, &Full);
  EXPECT_EQ(Full.ExactProvedOptimal, 1u);
  EXPECT_EQ(Full.ExactFallbacks, 0u);

  // A one-node budget exhausts on any round with candidates: the result
  // must honestly drop the proved-optimal claim.
  GO.ExactNodeBudget = 1;
  GroupingTelemetry Starved;
  groupStatementsGlobal(Unrolled, Deps, GO, &Starved);
  EXPECT_EQ(Starved.ExactProvedOptimal, 0u);
  EXPECT_GE(Starved.ExactFallbacks, 1u);

  // solveFirstRoundExact mirrors the exhaustion flag.
  EXPECT_FALSE(solveFirstRoundExact(Unrolled, Deps, GroupingOptions())
                   .Exhausted);
  GroupingOptions Tiny;
  Tiny.ExactNodeBudget = 0;
  EXPECT_TRUE(solveFirstRoundExact(Unrolled, Deps, Tiny).Exhausted);
}

/// Exact may repack, but (when it proves optimality) never commits a
/// lighter selection than the greedy engine — the invariant the
/// bench_grouping_scale --regret CI gate enforces over the whole suite.
TEST(GroupingExact, NeverLighterThanGreedyAcrossSuites) {
  auto Check = [](const Kernel &Prepared, const std::string &Name) {
    DependenceInfo Deps(Prepared);
    GroupingOptions GO;
    GroupingTelemetry TOpt;
    GO.Impl = GroupingImpl::Optimized;
    groupStatementsGlobal(Prepared, Deps, GO, &TOpt);
    GroupingTelemetry TExact;
    GO.Impl = GroupingImpl::Exact;
    groupStatementsGlobal(Prepared, Deps, GO, &TExact);
    if (TExact.ExactProvedOptimal) {
      EXPECT_GE(TExact.SelectionWeight, TOpt.SelectionWeight - 1e-9)
          << Name;
    }
  };
  for (const Workload &W : standardWorkloads())
    Check(unrollInnermost(W.TheKernel, chooseUnrollFactor(W.TheKernel, 4)),
          W.Name);
  for (const Workload &W : predicatedWorkloads()) {
    Kernel Conv = ifConvertKernel(W.TheKernel);
    Check(unrollInnermost(Conv, chooseUnrollFactor(Conv, 4)),
          "predicated " + W.Name);
  }
}

/// The budget is counted in decision nodes, not wall clock, so the whole
/// engine — including which rounds fall back — is deterministic across
/// repeats and across the module driver's worker-thread counts.
TEST(GroupingExact, DeterministicAcrossRepeatsAndThreads) {
  std::vector<Kernel> Module;
  for (const Workload &W : standardWorkloads())
    Module.push_back(W.TheKernel);

  PipelineOptions One;
  One.GroupingEngine = GroupingImpl::Exact;
  One.Threads = 1;
  ModulePipelineResult A =
      runPipelineOverModule(Module, OptimizerKind::Global, One);

  PipelineOptions Four;
  Four.GroupingEngine = GroupingImpl::Exact;
  Four.Threads = 4;
  ModulePipelineResult B =
      runPipelineOverModule(Module, OptimizerKind::Global, Four);
  ModulePipelineResult C =
      runPipelineOverModule(Module, OptimizerKind::Global, Four);

  ASSERT_EQ(A.PerKernel.size(), B.PerKernel.size());
  ASSERT_EQ(A.PerKernel.size(), C.PerKernel.size());
  for (unsigned I = 0; I != A.PerKernel.size(); ++I) {
    std::string PA = printVectorProgram(A.PerKernel[I].Final,
                                        A.PerKernel[I].Program);
    EXPECT_EQ(PA, printVectorProgram(B.PerKernel[I].Final,
                                     B.PerKernel[I].Program))
        << "kernel " << I << " differs between 1 and 4 threads";
    EXPECT_EQ(PA, printVectorProgram(C.PerKernel[I].Final,
                                     C.PerKernel[I].Program))
        << "kernel " << I << " differs between repeated runs";
  }

  // Telemetry (nodes, prunes, fallbacks, weight) is deterministic too.
  Kernel Unrolled = unrollInnermost(Module[0], chooseUnrollFactor(Module[0], 4));
  DependenceInfo Deps(Unrolled);
  GroupingOptions GO;
  GO.Impl = GroupingImpl::Exact;
  GroupingTelemetry X, Y;
  groupStatementsGlobal(Unrolled, Deps, GO, &X);
  groupStatementsGlobal(Unrolled, Deps, GO, &Y);
  EXPECT_EQ(X.ExactNodes, Y.ExactNodes);
  EXPECT_EQ(X.ExactPrunes, Y.ExactPrunes);
  EXPECT_EQ(X.ExactFallbacks, Y.ExactFallbacks);
  EXPECT_DOUBLE_EQ(X.SelectionWeight, Y.SelectionWeight);
}

} // namespace
