//===- tests/slp/PackTest.cpp ---------------------------------*- C++ -*-===//

#include "slp/Pack.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

} // namespace

TEST(Pack, OrderedKeyIsOrderSensitive) {
  Operand A = Operand::makeScalar(0);
  Operand B = Operand::makeScalar(1);
  EXPECT_NE(orderedPackKey({&A, &B}), orderedPackKey({&B, &A}));
  EXPECT_EQ(multisetPackKey({&A, &B}), multisetPackKey({&B, &A}));
}

TEST(Pack, MultisetKeyCountsDuplicates) {
  Operand A = Operand::makeScalar(0);
  Operand B = Operand::makeScalar(1);
  EXPECT_NE(multisetPackKey({&A, &A}), multisetPackKey({&A, &B}));
  EXPECT_NE(multisetPackKey({&A, &A, &B}), multisetPackKey({&A, &B, &B}));
}

TEST(Pack, PositionPacksLineUpLanes) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[16];
      a = c * A[0];
      b = d * A[1];
    })");
  auto Packs = positionPacks(K, {0, 1});
  // Positions: lhs, then c/d, then A[0]/A[1].
  ASSERT_EQ(Packs.size(), 3u);
  EXPECT_EQ(Packs[0][0]->symbol(), 0u); // a
  EXPECT_EQ(Packs[0][1]->symbol(), 1u); // b
  EXPECT_EQ(Packs[1][0]->symbol(), 2u); // c
  EXPECT_EQ(Packs[1][1]->symbol(), 3u); // d
  EXPECT_TRUE(Packs[2][0]->isArray());
}

TEST(Pack, PositionPacksRespectMemberOrder) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = 2.0;
    })");
  auto Forward = positionPacks(K, {0, 1});
  auto Backward = positionPacks(K, {1, 0});
  EXPECT_EQ(Forward[0][0]->symbol(), 0u);
  EXPECT_EQ(Backward[0][0]->symbol(), 1u);
}

TEST(Pack, PositionPackKeysAreMultisets) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = 2.0;
    })");
  EXPECT_EQ(positionPackKeys(K, {0, 1})[0], positionPackKeys(K, {1, 0})[0]);
}

TEST(Pack, DegenerateDetection) {
  Operand A = Operand::makeScalar(0);
  Operand B = Operand::makeScalar(1);
  Operand C1 = Operand::makeConstant(1.0);
  Operand C2 = Operand::makeConstant(2.0);
  EXPECT_TRUE(isDegeneratePack({&A, &A}));        // broadcast
  EXPECT_TRUE(isDegeneratePack({&C1, &C2}));      // all-constant
  EXPECT_TRUE(isDegeneratePack({&C1, &C1}));
  EXPECT_FALSE(isDegeneratePack({&A, &B}));
  EXPECT_FALSE(isDegeneratePack({&A, &C1}));
}
