//===- tests/slp/VerifierTest.cpp -----------------------------*- C++ -*-===//

#include "slp/Verifier.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Kernel fourIndependent() {
  return parse(R"(
    kernel k { scalar float a, b, c, d;
      a = 1.0;
      b = 2.0;
      c = 3.0;
      d = 4.0;
    })");
}

Schedule make(std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  return S;
}

} // namespace

TEST(Verifier, AcceptsScalarSchedule) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  EXPECT_TRUE(verifySchedule(K, D, scalarSchedule(K), 128).empty());
}

TEST(Verifier, AcceptsValidGroups) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  EXPECT_TRUE(verifySchedule(K, D, make({{0, 1, 2, 3}}), 128).empty());
  EXPECT_TRUE(verifySchedule(K, D, make({{2, 0}, {3, 1}}), 128).empty());
}

TEST(Verifier, RejectsMissingStatement) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}, {2}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("missing"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateStatement) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}, {1, 2}, {3}}), 128);
  EXPECT_FALSE(Issues.empty());
}

TEST(Verifier, RejectsOutOfRangeStatement) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  EXPECT_FALSE(verifySchedule(K, D, make({{0, 1, 2, 3}, {9}}), 128).empty());
}

TEST(Verifier, RejectsIntraGroupDependence) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = c * 2.0;
      b = a * 2.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("dependent"), std::string::npos);
}

TEST(Verifier, RejectsOrderViolation) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = 1.0;
      b = 2.0;
      c = a + 1.0;
      d = b + 1.0;
    })");
  DependenceInfo D(K);
  // Consumers before producers.
  auto Issues = verifySchedule(K, D, make({{2, 3}, {0, 1}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("violated"), std::string::npos);
}

TEST(Verifier, RejectsNonIsomorphicGroup) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0 + 2.0;
      b = 1.0 * 2.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("isomorphic"), std::string::npos);
}

TEST(Verifier, RejectsOverwideGroup) {
  Kernel K = parse(R"(
    kernel k { scalar double a, b, c;
      a = 1.0;
      b = 2.0;
      c = 3.0;
    })");
  DependenceInfo D(K);
  // Three doubles = 192 bits > 128.
  auto Issues = verifySchedule(K, D, make({{0, 1, 2}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("datapath"), std::string::npos);
  // But fine at 256 bits.
  EXPECT_TRUE(verifySchedule(K, D, make({{0, 1, 2}}), 256).empty());
}

TEST(Verifier, AggregatesMultipleIssues) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = a * 2.0;
    })");
  DependenceInfo D(K);
  // Dependent group AND missing nothing else: expect >= 1 issue; the
  // verifier reports all problems rather than stopping at the first.
  auto Issues = verifySchedule(K, D, make({{1, 0}}), 128);
  EXPECT_GE(Issues.size(), 2u); // non-isomorphic + dependent
}
