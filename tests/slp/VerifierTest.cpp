//===- tests/slp/VerifierTest.cpp -----------------------------*- C++ -*-===//

#include "slp/Verifier.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Kernel fourIndependent() {
  return parse(R"(
    kernel k { scalar float a, b, c, d;
      a = 1.0;
      b = 2.0;
      c = 3.0;
      d = 4.0;
    })");
}

Schedule make(std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  return S;
}

} // namespace

TEST(Verifier, AcceptsScalarSchedule) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  EXPECT_TRUE(verifySchedule(K, D, scalarSchedule(K), 128).empty());
}

TEST(Verifier, AcceptsValidGroups) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  EXPECT_TRUE(verifySchedule(K, D, make({{0, 1, 2, 3}}), 128).empty());
  EXPECT_TRUE(verifySchedule(K, D, make({{2, 0}, {3, 1}}), 128).empty());
}

TEST(Verifier, RejectsMissingStatement) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}, {2}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("missing"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateStatement) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}, {1, 2}, {3}}), 128);
  EXPECT_FALSE(Issues.empty());
}

TEST(Verifier, RejectsOutOfRangeStatement) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  EXPECT_FALSE(verifySchedule(K, D, make({{0, 1, 2, 3}, {9}}), 128).empty());
}

TEST(Verifier, RejectsIntraGroupDependence) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = c * 2.0;
      b = a * 2.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("dependent"), std::string::npos);
}

TEST(Verifier, RejectsOrderViolation) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      a = 1.0;
      b = 2.0;
      c = a + 1.0;
      d = b + 1.0;
    })");
  DependenceInfo D(K);
  // Consumers before producers.
  auto Issues = verifySchedule(K, D, make({{2, 3}, {0, 1}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("violated"), std::string::npos);
}

TEST(Verifier, RejectsNonIsomorphicGroup) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0 + 2.0;
      b = 1.0 * 2.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("isomorphic"), std::string::npos);
}

TEST(Verifier, RejectsOverwideGroup) {
  Kernel K = parse(R"(
    kernel k { scalar double a, b, c;
      a = 1.0;
      b = 2.0;
      c = 3.0;
    })");
  DependenceInfo D(K);
  // Three doubles = 192 bits > 128.
  auto Issues = verifySchedule(K, D, make({{0, 1, 2}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_NE(Issues[0].find("datapath"), std::string::npos);
  // But fine at 256 bits.
  EXPECT_TRUE(verifySchedule(K, D, make({{0, 1, 2}}), 256).empty());
}

// Exact diagnostic text for every §4.1 constraint violation and the
// permutation (coverage) check. These strings are load-bearing: the fuzz
// harness and corpus replay classify failures by them, so a wording change
// must update both this test and any recorded corpus reasons.

TEST(VerifierDiagnostics, MissingStatementExactText) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}, {3}}), 128);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0], "statement 2 missing from the schedule");
}

TEST(VerifierDiagnostics, DuplicateStatementExactText) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}, {1, 2}, {3}}), 128);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0], "statement 1 scheduled more than once");
}

TEST(VerifierDiagnostics, OutOfRangeStatementExactText) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1, 2, 3}, {9}}), 128);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0], "item 1 references statement 9 outside the block");
}

TEST(VerifierDiagnostics, IntraGroupDependenceExactText) {
  // Constraint 1: statements of one superword must be independent.
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c;
      a = c * 2.0;
      b = a * 2.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}}), 128);
  ASSERT_FALSE(Issues.empty());
  EXPECT_EQ(Issues.back(), "item 0 groups dependent statements 0 and 1");
}

TEST(VerifierDiagnostics, OrderViolationExactText) {
  // Constraint 2: dependences must be preserved across items.
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = a + 1.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{1}, {0}}), 128);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0], "dependence 0 -> 1 violated by the schedule order");
}

TEST(VerifierDiagnostics, NonIsomorphicExactText) {
  // Constraint 3: grouped statements must be isomorphic.
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0 + 2.0;
      b = 1.0 * 2.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1}}), 128);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0], "item 0 groups non-isomorphic statements");
}

TEST(VerifierDiagnostics, DatapathWidthExactText) {
  // Constraint 4: the superword must fit the datapath.
  Kernel K = parse(R"(
    kernel k { scalar double a, b, c;
      a = 1.0;
      b = 2.0;
      c = 3.0;
    })");
  DependenceInfo D(K);
  auto Issues = verifySchedule(K, D, make({{0, 1, 2}}), 128);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0],
            "item 0 is 192 bits wide, exceeding the 128-bit datapath");
}

// Structured form: every violation carries a stable SV code and a
// location, so tooling (slpc --analyze, the fuzz harness, CI triage) can
// classify failures without parsing the prose.

TEST(VerifierDiagnostics, CodesAndLocations) {
  Kernel K = fourIndependent();
  DependenceInfo D(K);

  // SV01: statement missing, located at the statement.
  auto Diags = verifyScheduleDiags(K, D, make({{0, 1}, {3}}), 128);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, "SV01");
  EXPECT_EQ(Diags[0].Severity, DiagSeverity::Error);
  EXPECT_EQ(Diags[0].Loc.Stmt, 2);
  EXPECT_EQ(Diags[0].render(),
            "error [SV01] (statement 2): statement 2 missing from the "
            "schedule");

  // SV02: duplicate, located at the statement and the re-scheduling item.
  Diags = verifyScheduleDiags(K, D, make({{0, 1}, {1, 2}, {3}}), 128);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, "SV02");
  EXPECT_EQ(Diags[0].Loc.Stmt, 1);
  EXPECT_EQ(Diags[0].Loc.Item, 1);

  // SV03: out-of-range statement, located at the item.
  Diags = verifyScheduleDiags(K, D, make({{0, 1, 2, 3}, {9}}), 128);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, "SV03");
  EXPECT_EQ(Diags[0].Loc.Item, 1);
}

TEST(VerifierDiagnostics, GroupConstraintCodes) {
  // SV04: non-isomorphic group, located at item and offending lane.
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0 + 2.0;
      b = 1.0 * 2.0;
    })");
  DependenceInfo D(K);
  auto Diags = verifyScheduleDiags(K, D, make({{0, 1}}), 128);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, "SV04");
  EXPECT_EQ(Diags[0].Loc.Item, 0);
  EXPECT_EQ(Diags[0].Loc.Lane, 1);

  // SV05: over-wide group, located at the item.
  Kernel W = parse(R"(
    kernel k { scalar double a, b, c;
      a = 1.0;
      b = 2.0;
      c = 3.0;
    })");
  DependenceInfo WD(W);
  Diags = verifyScheduleDiags(W, WD, make({{0, 1, 2}}), 128);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, "SV05");
  EXPECT_EQ(Diags[0].Loc.Item, 0);

  // SV06: intra-group dependence, located at the item.
  Kernel G = parse(R"(
    kernel k { scalar float a, b, c;
      a = c * 2.0;
      b = a * 2.0;
    })");
  DependenceInfo GD(G);
  Diags = verifyScheduleDiags(G, GD, make({{0, 1}}), 128);
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags.back().Code, "SV06");
  EXPECT_EQ(Diags.back().Loc.Item, 0);

  // SV07: order violation, located at the consumer statement/item.
  Kernel O = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = a + 1.0;
    })");
  DependenceInfo OD(O);
  Diags = verifyScheduleDiags(O, OD, make({{1}, {0}}), 128);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, "SV07");
  EXPECT_EQ(Diags[0].Loc.Stmt, 1);
  EXPECT_EQ(Diags[0].Loc.Item, 0);
}

TEST(VerifierDiagnostics, StringShimMatchesDiagMessages) {
  // verifySchedule is a rendering of verifyScheduleDiags: same issues, in
  // the same order, message-for-message.
  Kernel K = fourIndependent();
  DependenceInfo D(K);
  Schedule S = make({{0, 1}, {1, 2}});
  auto Diags = verifyScheduleDiags(K, D, S, 128);
  auto Strings = verifySchedule(K, D, S, 128);
  ASSERT_EQ(Diags.size(), Strings.size());
  for (size_t I = 0; I != Diags.size(); ++I)
    EXPECT_EQ(Diags[I].Message, Strings[I]);
}

TEST(Verifier, AggregatesMultipleIssues) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b;
      a = 1.0;
      b = a * 2.0;
    })");
  DependenceInfo D(K);
  // Dependent group AND missing nothing else: expect >= 1 issue; the
  // verifier reports all problems rather than stopping at the first.
  auto Issues = verifySchedule(K, D, make({{1, 0}}), 128);
  EXPECT_GE(Issues.size(), 2u); // non-isomorphic + dependent
}
