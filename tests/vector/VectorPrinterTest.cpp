//===- tests/vector/VectorPrinterTest.cpp ---------------------*- C++ -*-===//

#include "vector/VectorPrinter.h"

#include "ir/Parser.h"
#include "slp/Scheduling.h"
#include "vector/CodeGen.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

VectorProgram gen(const Kernel &K, std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  CodeGenOptions CG;
  return generateVectorProgram(
      K, S, CG,
      ScalarLayout::defaultLayout(static_cast<unsigned>(K.Scalars.size())));
}

} // namespace

TEST(VectorPrinter, LoadStoreAndOpRendering) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      B[2] = A[2] * 2.0;
      B[3] = A[3] * 2.0;
    })");
  std::string Out = printVectorProgram(K, gen(K, {{0, 1, 2, 3}}));
  EXPECT_NE(Out.find("vload.contig"), std::string::npos);
  EXPECT_NE(Out.find("vload.const"), std::string::npos);
  EXPECT_NE(Out.find("v* "), std::string::npos);
  EXPECT_NE(Out.find("vstore.contig"), std::string::npos);
  EXPECT_NE(Out.find("<A[0], A[1], A[2], A[3]>"), std::string::npos);
  EXPECT_NE(Out.find("1 superword stmt(s)"), std::string::npos);
}

TEST(VectorPrinter, ShuffleRendering) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = b + 1.0;
      d = a + 1.0;
    })");
  std::string Out = printVectorProgram(K, gen(K, {{0, 1}, {2, 3}}));
  EXPECT_NE(Out.find("vshuffle"), std::string::npos);
  EXPECT_NE(Out.find("0 direct + 1 permuted reuse(s)"), std::string::npos);
}

TEST(VectorPrinter, ScalarExecRendering) {
  Kernel K = parse("kernel k { scalar float a; a = 1.0 + 2.0; }");
  std::string Out = printVectorProgram(K, gen(K, {{0}}));
  EXPECT_NE(Out.find("scalar a = 1.0 + 2.0;"), std::string::npos);
}

TEST(VectorPrinter, GatherRendering) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      B[0] = A[0] + 1.0;
      B[2] = A[8] + 1.0;
    })");
  std::string Out = printVectorProgram(K, gen(K, {{0, 1}}));
  EXPECT_NE(Out.find("vload.gather"), std::string::npos);
  EXPECT_NE(Out.find("vstore.gather"), std::string::npos);
}

TEST(VectorPrinter, IndexedLines) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] + 1.0;
      B[1] = A[1] + 1.0;
    })");
  std::string Out = printVectorProgram(K, gen(K, {{0, 1}}));
  EXPECT_NE(Out.find("[  0]"), std::string::npos);
  EXPECT_NE(Out.find("[  1]"), std::string::npos);
}
