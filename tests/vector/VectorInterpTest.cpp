//===- tests/vector/VectorInterpTest.cpp ----------------------*- C++ -*-===//

#include "vector/VectorInterp.h"

#include "ir/Parser.h"
#include "vector/CodeGen.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Schedule make(std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  return S;
}

/// Generates code for \p S and checks vector execution against scalar
/// execution of the same kernel.
void expectSameResults(const Kernel &K, const Schedule &S, uint64_t Seed) {
  CodeGenOptions CG;
  ScalarLayout L =
      ScalarLayout::defaultLayout(static_cast<unsigned>(K.Scalars.size()));
  VectorProgram P = generateVectorProgram(K, S, CG, L);

  Environment Scalar(K, Seed);
  runKernelScalar(K, Scalar);
  Environment Vector(K, Seed);
  runVectorProgram(K, P, Vector);
  EXPECT_TRUE(Vector.matches(Scalar,
                             static_cast<unsigned>(K.Scalars.size()),
                             static_cast<unsigned>(K.Arrays.size())));
}

} // namespace

TEST(VectorInterp, StreamingGroup) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      loop i = 0 .. 8 {
        B[4*i]   = A[4*i] * 2.0 + 1.0;
        B[4*i+1] = A[4*i+1] * 2.0 + 1.0;
        B[4*i+2] = A[4*i+2] * 2.0 + 1.0;
        B[4*i+3] = A[4*i+3] * 2.0 + 1.0;
      }
    })");
  expectSameResults(K, make({{0, 1, 2, 3}}), 21);
}

TEST(VectorInterp, ReorderedLanes) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      loop i = 0 .. 8 {
        B[4*i]   = A[4*i] + 1.0;
        B[4*i+1] = A[4*i+1] + 1.0;
        B[4*i+2] = A[4*i+2] + 1.0;
        B[4*i+3] = A[4*i+3] + 1.0;
      }
    })");
  expectSameResults(K, make({{3, 1, 0, 2}}), 22);
}

TEST(VectorInterp, MixedSinglesAndGroups) {
  Kernel K = parse(R"(
    kernel k { scalar float s; array float A[16] readonly; array float B[16];
      loop i = 0 .. 8 {
        s = A[2*i] * 0.5;
        B[2*i]   = s + A[2*i];
        B[2*i+1] = s + A[2*i+1];
      }
    })");
  // s-statement scalar; B pair grouped (isomorphic? both Add(S, A)) yes.
  expectSameResults(K, make({{0}, {1, 2}}), 23);
}

TEST(VectorInterp, ShuffleSemantics) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = b + 1.0;
      d = a + 1.0;
    })");
  // Consumer lanes (2,3) read (b,a): permuted reuse path.
  expectSameResults(K, make({{0, 1}, {2, 3}}), 24);
}

TEST(VectorInterp, StaleRegisterWouldBeCaught) {
  // A[0..1] loaded, overwritten, reloaded: exercises invalidation. If the
  // code generator failed to invalidate, this test would miscompare.
  Kernel K = parse(R"(
    kernel k { array float A[8]; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      A[0] = 5.0;
      A[1] = 6.0;
      B[4] = A[0] * 2.0;
      B[5] = A[1] * 2.0;
    })");
  expectSameResults(K, make({{0, 1}, {2, 3}, {4, 5}}), 25);
}

TEST(VectorInterp, DivisionAndIntrinsics) {
  Kernel K = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      loop i = 0 .. 8 {
        B[2*i]   = 1.0 / (A[2*i] * A[2*i] + 0.5) + sqrt(abs(A[2*i]));
        B[2*i+1] = 1.0 / (A[2*i+1] * A[2*i+1] + 0.5) + sqrt(abs(A[2*i+1]));
      }
    })");
  expectSameResults(K, make({{0, 1}}), 26);
}

TEST(VectorInterp, MinMaxLanewise) {
  Kernel K = parse(R"(
    kernel k { array float A[16] readonly; array float B[16] readonly;
      array float C[16];
      loop i = 0 .. 8 {
        C[2*i]   = min(A[2*i], B[2*i]) + max(A[2*i], 1.0);
        C[2*i+1] = min(A[2*i+1], B[2*i+1]) + max(A[2*i+1], 1.0);
      }
    })");
  expectSameResults(K, make({{0, 1}}), 27);
}

TEST(VectorInterp, DoubleLanes) {
  Kernel K = parse(R"(
    kernel k { array double A[16] readonly; array double B[16];
      loop i = 0 .. 8 {
        B[2*i]   = A[2*i] * 0.25 - 1.0;
        B[2*i+1] = A[2*i+1] * 0.25 - 1.0;
      }
    })");
  expectSameResults(K, make({{0, 1}}), 28);
}

TEST(VectorInterp, RunOnceMatchesManualEvaluation) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] + 10.0;
      B[1] = A[1] + 10.0;
    })");
  CodeGenOptions CG;
  ScalarLayout L = ScalarLayout::defaultLayout(0);
  VectorProgram P = generateVectorProgram(K, make({{0, 1}}), CG, L);
  Environment Env(K, 30);
  double A0 = Env.arrayBuffer(0)[0], A1 = Env.arrayBuffer(0)[1];
  runVectorProgramOnce(K, P, Env, {});
  EXPECT_DOUBLE_EQ(Env.arrayBuffer(1)[0], A0 + 10.0);
  EXPECT_DOUBLE_EQ(Env.arrayBuffer(1)[1], A1 + 10.0);
}

TEST(VectorInterp, SimdReadsPrecedeWrites) {
  // Within a superword statement the (anti-dependence-free) lanes read
  // their operands before any lane writes: grouped lanes write disjoint
  // locations, but a lane may read a location another GROUP wrote earlier
  // in the schedule. Order: group writes A[4],A[5], then group reads them.
  Kernel K = parse(R"(
    kernel k { array float A[8];
      A[4] = 1.5;
      A[5] = 2.5;
      A[0] = A[4] * 2.0;
      A[1] = A[5] * 2.0;
    })");
  expectSameResults(K, make({{0, 1}, {2, 3}}), 31);
}
