//===- tests/vector/CodeGenTest.cpp ---------------------------*- C++ -*-===//

#include "vector/CodeGen.h"

#include "ir/Parser.h"
#include "slp/Verifier.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Schedule make(std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  return S;
}

VectorProgram gen(const Kernel &K, const Schedule &S,
                  bool PermutedReuse = true, bool CacheLoads = true) {
  CodeGenOptions CG;
  CG.EnablePermutedReuse = PermutedReuse;
  CG.CacheLoadedPacks = CacheLoads;
  ScalarLayout L =
      ScalarLayout::defaultLayout(static_cast<unsigned>(K.Scalars.size()));
  return generateVectorProgram(K, S, CG, L);
}

unsigned count(const VectorProgram &P, VInstKind Kind) {
  unsigned N = 0;
  for (const VInst &I : P.Insts)
    N += I.Kind == Kind;
  return N;
}

unsigned countLoadsWithMode(const VectorProgram &P, PackMode Mode) {
  unsigned N = 0;
  for (const VInst &I : P.Insts)
    N += I.Kind == VInstKind::LoadPack && I.Mode == Mode;
  return N;
}

} // namespace

TEST(CodeGen, ContiguousLoadAndStore) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      B[2] = A[2] * 2.0;
      B[3] = A[3] * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1, 2, 3}}));
  EXPECT_EQ(countLoadsWithMode(P, PackMode::ContiguousAligned), 1u);
  EXPECT_EQ(countLoadsWithMode(P, PackMode::AllConstant), 1u);
  EXPECT_EQ(count(P, VInstKind::VectorOp), 1u);
  ASSERT_EQ(count(P, VInstKind::StorePack), 1u);
  EXPECT_EQ(P.Insts.back().Mode, PackMode::ContiguousAligned);
}

TEST(CodeGen, GatherForStridedRefs) {
  Kernel K = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      B[0] = A[0] * 2.0;
      B[1] = A[4] * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}}));
  EXPECT_EQ(countLoadsWithMode(P, PackMode::GatherScalar), 1u);
}

TEST(CodeGen, BroadcastForRepeatedOperand) {
  Kernel K = parse(R"(
    kernel k { scalar float p; array float A[8] readonly; array float B[8];
      B[0] = A[0] * p;
      B[1] = A[1] * p;
    })");
  VectorProgram P = gen(K, make({{0, 1}}));
  EXPECT_EQ(countLoadsWithMode(P, PackMode::Broadcast), 1u);
}

TEST(CodeGen, DirectReuseOfResultPack) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = a + 1.0;
      d = b + 1.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}, {2, 3}}));
  EXPECT_EQ(P.Stats.DirectReuses, 1u);
  // The consumer's <a,b> operand comes from the producer's register, not
  // from a load.
  EXPECT_EQ(countLoadsWithMode(P, PackMode::GatherScalar), 0u);
}

TEST(CodeGen, PermutedReuseEmitsOneShuffle) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = b + 1.0;
      d = a + 1.0;
    })");
  // Force the consumer lane order (2,3) so its operand pack is (b,a).
  VectorProgram P = gen(K, make({{0, 1}, {2, 3}}));
  EXPECT_EQ(P.Stats.PermutedReuses, 1u);
  EXPECT_EQ(count(P, VInstKind::Shuffle), 1u);
}

TEST(CodeGen, PermutedReuseDisabledRegathers) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = b + 1.0;
      d = a + 1.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}, {2, 3}}), /*PermutedReuse=*/false);
  EXPECT_EQ(P.Stats.PermutedReuses, 0u);
  EXPECT_EQ(count(P, VInstKind::Shuffle), 0u);
  EXPECT_EQ(countLoadsWithMode(P, PackMode::GatherScalar), 1u);
}

TEST(CodeGen, LoadCachingDisabledReloads) {
  Kernel K = parse(R"(
    kernel k { array float A[8] readonly; array float B[8]; array float C[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      C[0] = A[0] * 3.0;
      C[1] = A[1] * 3.0;
    })");
  VectorProgram Cached = gen(K, make({{0, 1}, {2, 3}}));
  VectorProgram Uncached = gen(K, make({{0, 1}, {2, 3}}), true,
                               /*CacheLoads=*/false);
  EXPECT_EQ(Cached.Stats.DirectReuses, 1u);
  EXPECT_EQ(Uncached.Stats.DirectReuses, 0u);
  EXPECT_EQ(count(Uncached, VInstKind::LoadPack),
            count(Cached, VInstKind::LoadPack) + 1);
}

TEST(CodeGen, RepeatedOperandWithinStatementReusesRegister) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d;
      c = a * a;
      d = b * b;
    })");
  // <a,b> used at both multiplicand positions: one load, one direct reuse,
  // even with load caching off (intra-statement).
  VectorProgram P = gen(K, make({{0, 1}}), true, /*CacheLoads=*/false);
  EXPECT_EQ(count(P, VInstKind::LoadPack), 1u);
  EXPECT_EQ(P.Stats.DirectReuses, 1u);
}

TEST(CodeGen, StoreInvalidatesAliasingPacks) {
  // Scalar statements overwrite A[0]/A[1]; the live <A[0],A[1]> pack must
  // be invalidated so the final group reloads fresh values.
  Kernel K = parse(R"(
    kernel k { array float A[8]; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      A[0] = 5.0;
      A[1] = 6.0;
      B[4] = A[0] * 2.0;
      B[5] = A[1] * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}, {2}, {3}, {4, 5}}));
  unsigned LoadsOfA = 0;
  for (const VInst &I : P.Insts)
    if (I.Kind == VInstKind::LoadPack && !I.LaneOps.empty() &&
        I.LaneOps[0].isArray() && I.LaneOps[0].symbol() == 0)
      ++LoadsOfA;
  EXPECT_EQ(LoadsOfA, 2u);
}

TEST(CodeGen, GroupedStoreForwardsItsResultPack) {
  // When a *group* writes A[0]/A[1], its result register holds exactly
  // those memory values, so a later read of the pack is a direct reuse
  // (no reload) — invalidation replaces the stale pack with the fresh one.
  Kernel K = parse(R"(
    kernel k { array float A[8]; array float B[8];
      B[0] = A[0] * 2.0;
      B[1] = A[1] * 2.0;
      A[0] = 5.0;
      A[1] = 6.0;
      B[4] = A[0] * 2.0;
      B[5] = A[1] * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}, {2, 3}, {4, 5}}));
  unsigned LoadsOfA = 0;
  for (const VInst &I : P.Insts)
    if (I.Kind == VInstKind::LoadPack && !I.LaneOps.empty() &&
        I.LaneOps[0].isArray() && I.LaneOps[0].symbol() == 0)
      ++LoadsOfA;
  EXPECT_EQ(LoadsOfA, 1u);
  EXPECT_GE(P.Stats.DirectReuses, 1u);
}

TEST(CodeGen, ScalarWriteInvalidates) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, s; array float B[8];
      B[0] = a * 2.0;
      B[1] = b * 2.0;
      a = 9.0;
      B[4] = a * 2.0;
      B[5] = b * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}, {2}, {3, 4}}));
  unsigned Gathers = countLoadsWithMode(P, PackMode::GatherScalar);
  EXPECT_EQ(Gathers, 2u); // <a,b> gathered twice (invalidated by a = 9)
}

TEST(CodeGen, ScatterStoreForStridedLhs) {
  Kernel K = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      B[0] = A[0] * 2.0;
      B[2] = A[1] * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}}));
  ASSERT_EQ(count(P, VInstKind::StorePack), 1u);
  for (const VInst &I : P.Insts)
    if (I.Kind == VInstKind::StorePack)
      EXPECT_EQ(I.Mode, PackMode::GatherScalar);
}

TEST(CodeGen, PermutedContiguousStore) {
  Kernel K = parse(R"(
    kernel k { array float A[16] readonly; array float B[16];
      B[1] = A[0] * 2.0;
      B[0] = A[1] * 2.0;
    })");
  VectorProgram P = gen(K, make({{0, 1}}));
  for (const VInst &I : P.Insts)
    if (I.Kind == VInstKind::StorePack)
      EXPECT_EQ(I.Mode, PackMode::PermutedContiguous);
}

TEST(CodeGen, ScalarLayoutContiguityCheck) {
  ScalarLayout L;
  L.Slots = {4, 5, 6, 7, 0, 2};
  Operand S0 = Operand::makeScalar(0), S1 = Operand::makeScalar(1);
  Operand S2 = Operand::makeScalar(2), S3 = Operand::makeScalar(3);
  Operand S4 = Operand::makeScalar(4), S5 = Operand::makeScalar(5);
  EXPECT_TRUE(L.contiguousAligned({&S0, &S1, &S2, &S3}));
  EXPECT_FALSE(L.contiguousAligned({&S1, &S2})); // base 5 not 2-aligned
  EXPECT_FALSE(L.contiguousAligned({&S4, &S5})); // slots 0,2 not adjacent
  EXPECT_FALSE(L.contiguousAligned({&S3, &S2})); // descending
}

TEST(CodeGen, DefaultScalarLayoutNeverContiguous) {
  ScalarLayout L = ScalarLayout::defaultLayout(8);
  for (unsigned I = 0; I + 1 < 8; ++I) {
    Operand A = Operand::makeScalar(I), B = Operand::makeScalar(I + 1);
    EXPECT_FALSE(L.contiguousAligned({&A, &B}));
  }
}

TEST(CodeGen, SinglesExecuteScalarly) {
  Kernel K = parse(R"(
    kernel k { scalar float a; a = 1.0; })");
  VectorProgram P = gen(K, make({{0}}));
  ASSERT_EQ(P.Insts.size(), 1u);
  EXPECT_EQ(P.Insts[0].Kind, VInstKind::ScalarExec);
  EXPECT_EQ(P.Stats.ScalarStatements, 1u);
}

TEST(CodeGen, RegisterPressureEviction) {
  // More distinct packs than registers: the LRU pack is evicted and must
  // be rematerialized on reuse. (No constants: constant splats would stay
  // hot in the register file and mask the eviction.)
  std::string Src = "kernel k { array float A[64] readonly; "
                    "array float C[64] readonly; array float B[64];\n";
  // 10 pairs, each loading two distinct strided packs, then a final pair
  // reusing the very first packs.
  for (int I = 0; I < 10; ++I)
    Src += "B[" + std::to_string(2 * I) + "] = A[" + std::to_string(4 * I) +
           "] + C[" + std::to_string(4 * I) + "];\nB[" +
           std::to_string(2 * I + 1) + "] = A[" + std::to_string(4 * I + 2) +
           "] + C[" + std::to_string(4 * I + 2) + "];\n";
  Src += "B[40] = A[0] + C[0];\nB[41] = A[2] + C[2];\n}";
  Kernel K = parse(Src);
  std::vector<std::vector<unsigned>> Groups;
  for (unsigned I = 0; I < 11; ++I)
    Groups.push_back({2 * I, 2 * I + 1});

  CodeGenOptions Tiny;
  Tiny.NumVectorRegisters = 4;
  ScalarLayout L = ScalarLayout::defaultLayout(0);
  VectorProgram Pressured =
      generateVectorProgram(K, make({Groups.begin(), Groups.end()}), Tiny, L);
  // The <A[0],A[2]> and <C[0],C[2]> packs were evicted before their reuse.
  EXPECT_EQ(Pressured.Stats.DirectReuses, 0u);

  CodeGenOptions Roomy;
  Roomy.NumVectorRegisters = 64;
  VectorProgram Unpressured =
      generateVectorProgram(K, make({Groups.begin(), Groups.end()}), Roomy,
                            L);
  EXPECT_EQ(Unpressured.Stats.DirectReuses, 2u);
}
