//===- tests/exec/ExecEngineDifferentialTest.cpp --------------*- C++ -*-===//
//
// Holds the two execution engines (exec/ExecEngine.h) to their
// bit-identity contract: the optimized flat-tape engine must produce
// exactly the same environment contents and dynamic operation counts as
// the tree-walking reference interpreters, over the full 16-workload
// suite, every recorded fuzz repro, zero-trip loops, aliasing kernels,
// and a random-kernel sweep. Also pins the EnvironmentPool's
// reset-equals-fresh-construction contract and sanity-checks the
// ExecCounters telemetry.
//
// SLP_FUZZ_CORPUS_DIR is injected by CMake (same as CorpusReplayTest).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecEngine.h"
#include "fuzz/Fuzzer.h"
#include "ir/Parser.h"
#include "layout/Layout.h"
#include "slp/Pipeline.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace slp;

#ifndef SLP_FUZZ_CORPUS_DIR
#error "CMake must define SLP_FUZZ_CORPUS_DIR"
#endif

namespace {

/// Runs \p K under scalar semantics on both engines from identical
/// environments and demands bit-identical results and identical dynamic
/// operation counts.
void expectScalarAgreement(const Kernel &K, uint64_t Seed,
                           const std::string &Label) {
  ExecEngine Opt(ExecEngineKind::Optimized);
  ExecEngine Ref(ExecEngineKind::Reference);
  Environment OptEnv(K, Seed);
  Environment RefEnv(K, Seed);
  ScalarExecStats OptStats = Opt.runKernel(K, OptEnv);
  ScalarExecStats RefStats = Ref.runKernel(K, RefEnv);
  EXPECT_TRUE(OptEnv.matches(RefEnv, static_cast<unsigned>(K.Scalars.size()), static_cast<unsigned>(K.Arrays.size())))
      << Label << " seed " << Seed
      << ": engines diverged on scalar execution";
  EXPECT_EQ(OptStats.AluOps, RefStats.AluOps) << Label << " seed " << Seed;
  EXPECT_EQ(OptStats.ArrayLoads, RefStats.ArrayLoads)
      << Label << " seed " << Seed;
  EXPECT_EQ(OptStats.ArrayStores, RefStats.ArrayStores)
      << Label << " seed " << Seed;
}

/// Builds the candidate environment the equivalence check uses for vector
/// execution: seeded from the *original* kernel, extended with
/// unroll-clone scalars and layout-replica arrays of the final kernel.
Environment makeVectorEnv(const Kernel &Source, const PipelineResult &R,
                          uint64_t Seed) {
  Environment Env(Source, Seed);
  for (unsigned S = static_cast<unsigned>(Source.Scalars.size()),
                E = static_cast<unsigned>(R.Final.Scalars.size());
       S != E; ++S)
    Env.addScalarStorage(0);
  for (unsigned A = static_cast<unsigned>(Source.Arrays.size()),
                E = static_cast<unsigned>(R.Final.Arrays.size());
       A != E; ++A)
    Env.addArrayStorage(R.Final.Arrays[A].numElements());
  if (R.LayoutApplied)
    initializeReplicas(R.Final, R.Layout, Env);
  return Env;
}

/// Runs \p R's vector program on both engines from identical environments
/// and demands bit-identical final contents (including replicas).
void expectVectorAgreement(const Kernel &Source, const PipelineResult &R,
                           uint64_t Seed, const std::string &Label) {
  ExecEngine Opt(ExecEngineKind::Optimized);
  ExecEngine Ref(ExecEngineKind::Reference);
  Environment OptEnv = makeVectorEnv(Source, R, Seed);
  Environment RefEnv = makeVectorEnv(Source, R, Seed);
  Opt.runProgram(R.Final, R.Program, OptEnv);
  Ref.runProgram(R.Final, R.Program, RefEnv);
  EXPECT_TRUE(OptEnv.matches(RefEnv,
                             static_cast<unsigned>(R.Final.Scalars.size()),
                             static_cast<unsigned>(R.Final.Arrays.size())))
      << Label << " seed " << Seed
      << ": engines diverged on vector execution";
}

/// Full differential over one kernel: scalar agreement on the source,
/// then vector agreement on each optimizer's emitted program, then the
/// end-to-end equivalence verdict under both engines.
void expectFullAgreement(const Kernel &K, const std::string &Label) {
  for (uint64_t Seed : {uint64_t(1), uint64_t(77), uint64_t(0xC0FFEE)})
    expectScalarAgreement(K, Seed, Label);
  for (OptimizerKind Kind :
       {OptimizerKind::LarsenSlp, OptimizerKind::Global,
        OptimizerKind::GlobalLayout}) {
    PipelineResult R = runPipeline(K, Kind, PipelineOptions());
    std::string Name = Label + "/" + optimizerName(Kind);
    for (uint64_t Seed : {uint64_t(1), uint64_t(0xFACADE)})
      expectVectorAgreement(K, R, Seed, Name);
    for (ExecEngineKind EK :
         {ExecEngineKind::Optimized, ExecEngineKind::Reference}) {
      ExecEngine Engine(EK);
      std::string Error;
      EXPECT_TRUE(checkEquivalence(K, R, /*Seed=*/1234, &Error, &Engine))
          << Name << " under " << execEngineName(EK) << ": " << Error;
    }
  }
}

Kernel parse(const std::string &Src) {
  ParseResult P = parseKernel(Src);
  EXPECT_TRUE(P.succeeded()) << P.ErrorMessage;
  return *P.TheKernel;
}

} // namespace

TEST(ExecDifferential, WorkloadScalarBitIdentity) {
  for (const Workload &W : standardWorkloads())
    for (uint64_t Seed : {uint64_t(1), uint64_t(0xC0FFEE)})
      expectScalarAgreement(W.TheKernel, Seed, W.Name);
}

TEST(ExecDifferential, WorkloadVectorBitIdentity) {
  for (const Workload &W : standardWorkloads()) {
    for (OptimizerKind Kind :
         {OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, PipelineOptions());
      expectVectorAgreement(W.TheKernel, R, /*Seed=*/1234,
                            W.Name + "/" + optimizerName(Kind));
    }
  }
}

TEST(ExecDifferential, WorkloadEquivalenceUnderBothEngines) {
  for (const Workload &W : standardWorkloads()) {
    PipelineResult R =
        runPipeline(W.TheKernel, OptimizerKind::GlobalLayout,
                    PipelineOptions());
    for (ExecEngineKind EK :
         {ExecEngineKind::Optimized, ExecEngineKind::Reference}) {
      ExecEngine Engine(EK);
      std::string Error;
      EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/42, &Error,
                                   &Engine))
          << W.Name << " under " << execEngineName(EK) << ": " << Error;
    }
  }
}

TEST(ExecDifferential, CorpusReplaysUnderBothEngines) {
  // Every recorded repro — including the NaN and int-store-reuse
  // regressions — must replay cleanly no matter which engine executes it.
  std::vector<std::string> Files = listCorpusFiles(SLP_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(Files.empty())
      << "no corpus cases under " << SLP_FUZZ_CORPUS_DIR;
  for (const std::string &Path : Files) {
    std::string Text;
    ASSERT_TRUE(readFile(Path, Text)) << Path;
    FuzzCase Case;
    std::string Error;
    ASSERT_TRUE(parseFuzzCase(Text, Case, &Error)) << Path << ": " << Error;
    for (ExecEngineKind EK :
         {ExecEngineKind::Optimized, ExecEngineKind::Reference}) {
      Case.Config.Exec = EK;
      EXPECT_TRUE(runFuzzCase(Case, &Error))
          << Path << " under " << execEngineName(EK) << ": " << Error;
    }
  }
}

TEST(ExecDifferential, ZeroTripLoops) {
  // A zero-trip nest must leave the environment untouched and report zero
  // dynamic operations on both engines.
  Kernel Outer = parse(R"(
    kernel zerotrip { array float A[8]; scalar float s;
      loop i = 4 .. 4 { A[i] = 2.0; s = A[i] + 1.0; }
    })");
  expectFullAgreement(Outer, "zerotrip");
  ExecEngine Opt(ExecEngineKind::Optimized);
  Environment Before(Outer, 7);
  Environment After(Outer, 7);
  ScalarExecStats Stats = Opt.runKernel(Outer, After);
  EXPECT_TRUE(After.matches(Before, static_cast<unsigned>(Outer.Scalars.size()), static_cast<unsigned>(Outer.Arrays.size())));
  EXPECT_EQ(Stats.totalInstructions(), 0u);

  Kernel Inner = parse(R"(
    kernel zeroinner { array float A[64];
      loop i = 0 .. 8 { loop j = 3 .. 3 { A[8*i + j] = 1.0; } }
    })");
  expectFullAgreement(Inner, "zeroinner");
}

TEST(ExecDifferential, AliasingKernels) {
  // Aliasing through distinct affine forms: the tape's strength-reduced
  // address slots must respect the same store -> load order the reference
  // interpreter executes.
  expectFullAgreement(parse(R"(
    kernel aliasload { array float A[16]; array float B[16];
      loop i = 0 .. 16 {
        A[i] = 7.0;
        B[i] = A[2*i - i] + 1.0;
      }
    })"), "aliasload");
  expectFullAgreement(parse(R"(
    kernel crosslane { array float A[24]; array float B[16];
      loop i = 0 .. 16 {
        B[i] = A[i] + 1.0;
        A[i + 1] = B[i] * 0.5;
      }
    })"), "crosslane");
}

TEST(ExecDifferential, NaNAndIntSemantics) {
  // 0/0 NaN everywhere, and truncating integer stores with reuse.
  expectFullAgreement(parse(R"(
    kernel nanprop { array float A[16] readonly; array float B[16];
      loop i = 0 .. 16 {
        B[i] = (A[i] - A[i]) / (A[i] - A[i]);
      }
    })"), "nanprop");
  expectFullAgreement(parse(R"(
    kernel intreuse { array int I[16]; array float B[16];
      loop i = 0 .. 16 {
        I[i] = I[i] / 3.0;
        B[i] = I[i] * 0.5;
      }
    })"), "intreuse");
}

TEST(ExecDifferential, RandomKernelSweep) {
  Rng R(20260806);
  RandomKernelOptions Options;
  Options.MaxStatements = 12;
  for (unsigned I = 0; I != 40; ++I) {
    Options.NumLoops = 1 + (I % 2);
    Kernel K = randomKernel(R, Options);
    for (uint64_t Seed : {uint64_t(1), uint64_t(99)})
      expectScalarAgreement(K, Seed, "random#" + std::to_string(I));
    PipelineResult Res =
        runPipeline(K, OptimizerKind::GlobalLayout, PipelineOptions());
    expectVectorAgreement(K, Res, /*Seed=*/1234,
                          "random#" + std::to_string(I));
  }
}

TEST(ExecDifferential, EnvironmentPoolResetMatchesFresh) {
  // Pool acquire after release must be observationally identical to fresh
  // construction, even when the slot previously held a different kernel's
  // (larger) environment.
  Kernel Big = workloadByName("milc").TheKernel;
  Kernel Small = parse(R"(
    kernel tiny { array float A[4]; scalar float s;
      loop i = 0 .. 4 { A[i] = A[i] + 1.0; s = A[i]; }
    })");
  ExecEngine Engine(ExecEngineKind::Optimized);
  EnvironmentPool &Pool = Engine.envPool();

  size_t Mark = Pool.mark();
  Environment &First = Pool.acquire(Big, 5);
  Engine.runKernel(Big, First); // dirty the buffers
  Pool.releaseTo(Mark);

  Environment &Reused = Pool.acquire(Small, 123);
  Environment Fresh(Small, 123);
  EXPECT_TRUE(Reused.matches(Fresh, static_cast<unsigned>(Small.Scalars.size()), static_cast<unsigned>(Small.Arrays.size())))
      << "pooled reset is not bit-identical to fresh construction";
  Pool.releaseTo(Mark);

  EXPECT_GE(Engine.counters().EnvReuses, 1u);
  EXPECT_GE(Engine.counters().EnvConstructions, 1u);
}

TEST(ExecDifferential, CountersAccountForTapeWork) {
  Kernel K = workloadByName("milc").TheKernel;
  ExecEngine Opt(ExecEngineKind::Optimized);
  CompiledScalarKernel C = Opt.compileScalar(K);
  ASSERT_TRUE(C.UseTape);
  Environment EnvA(K, 1);
  Environment EnvB(K, 1);
  Opt.runScalar(C, EnvA);
  Opt.runScalar(C, EnvB);
  const ExecCounters &OC = Opt.counters();
  EXPECT_EQ(OC.ScalarTapesCompiled, 1u);
  EXPECT_EQ(OC.TapeRuns, 2u);
  EXPECT_GT(OC.TapeOpsExecuted, 0u);
  EXPECT_GT(OC.BlockIterations, 0u);
  // Strength reduction: one full address evaluation per slot per run, and
  // one incremental update per slot per subsequent iteration — far fewer
  // full evaluations than increments for a multi-iteration kernel.
  EXPECT_GT(OC.AddrIncrements, OC.AddrFullEvals);
  // Second run reuses the grown arena.
  EXPECT_GE(OC.ArenaReuses, 1u);
  EXPECT_EQ(OC.ReferenceRuns, 0u);

  ExecEngine Ref(ExecEngineKind::Reference);
  Environment EnvC(K, 1);
  Ref.runKernel(K, EnvC);
  const ExecCounters &RC = Ref.counters();
  EXPECT_EQ(RC.ScalarTapesCompiled, 0u);
  EXPECT_EQ(RC.TapeRuns, 0u);
  EXPECT_EQ(RC.ReferenceRuns, 1u);
}

TEST(ExecDifferential, PredicatedWorkloadBitIdentity) {
  // The guarded suite (memcpy_cond, dotprod_cond, mmm_cond) must survive
  // the full differential: scalar bit-identity, vector bit-identity under
  // every optimizer, and the end-to-end equivalence verdict on both
  // engines. Masked stores flow through the optimized tape here.
  for (const Workload &W : predicatedWorkloads())
    expectFullAgreement(W.TheKernel, W.Name);
}

TEST(ExecDifferential, AllFalseMaskPreservesDestination) {
  // A constant-false comparison guard is deliberately NOT folded by
  // if-convert, so the vector program executes a masked store with every
  // lane's mask zero. Both engines must leave dst untouched while still
  // accounting for the attempted (suppressed) stores.
  Kernel K = parse(R"(
    kernel allfalse { array float src[32] readonly; array float dst[32];
      loop i = 0 .. 32 { if (1.0 < 0.5) dst[i] = src[i] * 2.0; }
    })");
  expectFullAgreement(K, "allfalse");
  ExecEngine Opt(ExecEngineKind::Optimized);
  Environment Before(K, 9);
  Environment After(K, 9);
  ScalarExecStats Stats = Opt.runKernel(K, After);
  EXPECT_TRUE(After.matches(Before, static_cast<unsigned>(K.Scalars.size()), static_cast<unsigned>(K.Arrays.size())))
      << "all-false guard wrote to the environment";
  EXPECT_EQ(Stats.ArrayStores, 32u)
      << "suppressed stores must still count as attempted stores";
}

TEST(ExecDifferential, PredicatedRandomSweep) {
  // Random kernels where half the statements carry guards: scalar
  // bit-identity on both engines, then vector bit-identity on the fully
  // optimized pipeline output.
  Rng R(20260807);
  RandomKernelOptions Options;
  Options.MaxStatements = 10;
  Options.GuardProbability = 0.5;
  for (unsigned I = 0; I != 30; ++I) {
    Options.NumLoops = 1 + (I % 2);
    Kernel K = randomKernel(R, Options);
    std::string Label = "pred-random#" + std::to_string(I);
    for (uint64_t Seed : {uint64_t(1), uint64_t(99)})
      expectScalarAgreement(K, Seed, Label);
    PipelineResult Res =
        runPipeline(K, OptimizerKind::GlobalLayout, PipelineOptions());
    expectVectorAgreement(K, Res, /*Seed=*/1234, Label);
  }
}
