//===- tests/support/PassManagerTest.cpp ----------------------*- C++ -*-===//
//
// Covers the pass-manager subsystem: pass ordering and timing in
// PassPipeline, statistic counters, remark emission, the pass registry,
// and the instrumentation produced by the canonical pipelines.
//
//===----------------------------------------------------------------------===//

#include "support/PassManager.h"

#include "ir/Parser.h"
#include "slp/Passes.h"
#include "slp/Pipeline.h"
#include "slp/PipelineState.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Kernel streamingKernel() {
  return parse(R"(
    kernel stream { array float A[64] readonly; array float B[64];
      loop i = 0 .. 64 { B[i] = A[i] * 2.0 + 1.0; } })");
}

Kernel hopelessKernel() {
  // A single strided one-op statement: vectorizing it loses, so the
  // cost-model guard must reject the block.
  return parse(R"(
    kernel bad { array float A[512]; array float B[512];
      loop i = 0 .. 64 { B[8*i] = A[8*i] * 2.0; } })");
}

/// Test pass that appends its tag to a shared log and bumps a counter.
class LogPass : public KernelPass {
public:
  LogPass(const char *Tag, std::vector<std::string> &Log)
      : Tag(Tag), Log(Log) {}
  const char *name() const override { return Tag; }
  void run(PassContext &Ctx) override {
    Log.push_back(Tag);
    Ctx.Stats.add("log.runs");
    Ctx.Remarks.note(Tag, "ran");
  }

private:
  const char *Tag;
  std::vector<std::string> &Log;
};

} // namespace

// --- Statistics ----------------------------------------------------------

TEST(Statistics, AddAndGet) {
  Statistics S;
  EXPECT_EQ(S.get("x"), 0u);
  EXPECT_FALSE(S.has("x"));
  S.add("x");
  S.add("x", 4);
  EXPECT_EQ(S.get("x"), 5u);
  EXPECT_TRUE(S.has("x"));
  S.set("x", 2);
  EXPECT_EQ(S.get("x"), 2u);
}

TEST(Statistics, MergePreservesInsertionOrder) {
  Statistics A, B;
  A.add("first", 1);
  B.add("second", 2);
  B.add("first", 10);
  A.merge(B);
  ASSERT_EQ(A.counters().size(), 2u);
  EXPECT_EQ(A.counters()[0].Name, "first");
  EXPECT_EQ(A.counters()[0].Value, 11u);
  EXPECT_EQ(A.counters()[1].Name, "second");
  EXPECT_EQ(A.counters()[1].Value, 2u);
}

TEST(Statistics, StrListsEveryCounter) {
  Statistics S;
  S.add("packs-formed", 3);
  std::string Text = S.str();
  EXPECT_NE(Text.find("packs-formed"), std::string::npos);
  EXPECT_NE(Text.find("3"), std::string::npos);
}

// --- Timer / TimingReport ------------------------------------------------

TEST(Timer, AccumulatesIntervals) {
  Timer T;
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
  T.start();
  T.stop();
  double First = T.seconds();
  EXPECT_GE(First, 0.0);
  { TimeRegion R(T); }
  EXPECT_GE(T.seconds(), First);
  T.reset();
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
}

TEST(TimingReport, RecordAndMergeKeepFirstAppearanceOrder) {
  TimingReport A;
  A.record("unroll", 0.5);
  A.record("codegen", 0.25);
  A.record("unroll", 0.5);
  EXPECT_DOUBLE_EQ(A.secondsFor("unroll"), 1.0);
  EXPECT_DOUBLE_EQ(A.totalSeconds(), 1.25);
  ASSERT_EQ(A.entries().size(), 2u);
  EXPECT_EQ(A.entries()[0].Name, "unroll");
  EXPECT_EQ(A.entries()[0].Invocations, 2u);

  TimingReport B;
  B.record("grouping", 0.125);
  B.record("unroll", 1.0);
  A.merge(B);
  ASSERT_EQ(A.entries().size(), 3u);
  EXPECT_EQ(A.entries()[2].Name, "grouping");
  EXPECT_DOUBLE_EQ(A.secondsFor("unroll"), 2.0);
  EXPECT_NE(A.str().find("grouping"), std::string::npos);
}

// --- RemarkStream --------------------------------------------------------

TEST(RemarkStream, CollectsKindsAndSubject) {
  RemarkStream RS;
  RS.setSubject("k1");
  RS.applied("codegen", "vectorized");
  RS.missed("cost-guard", "rejected");
  ASSERT_EQ(RS.remarks().size(), 2u);
  EXPECT_EQ(RS.remarks()[0].Kind, RemarkKind::Applied);
  EXPECT_EQ(RS.remarks()[0].Kernel, "k1");
  EXPECT_EQ(RS.remarks()[1].Kind, RemarkKind::Missed);
  EXPECT_NE(RS.remarks()[0].str().find("[codegen] vectorized"),
            std::string::npos);
  EXPECT_NE(RS.remarks()[1].str().find("missed"), std::string::npos);
  std::vector<Remark> Taken = RS.take();
  EXPECT_EQ(Taken.size(), 2u);
  EXPECT_TRUE(RS.empty());
}

// --- PassPipeline --------------------------------------------------------

TEST(PassPipeline, RunsPassesInOrderAndTimesEach) {
  Kernel K = streamingKernel();
  PipelineOptions Options;
  PipelineState State(K, OptimizerKind::Global, Options);
  Statistics Stats;
  RemarkStream Remarks;
  PassContext Ctx{State, Stats, Remarks};

  std::vector<std::string> Log;
  PassPipeline P;
  P.addPass(std::make_unique<LogPass>("a", Log));
  P.addPass(std::make_unique<LogPass>("b", Log));
  P.addPass(std::make_unique<LogPass>("c", Log));
  P.addPass(nullptr); // ignored
  EXPECT_EQ(P.size(), 3u);
  EXPECT_EQ(P.passNames(), (std::vector<std::string>{"a", "b", "c"}));

  TimingReport Timing;
  P.run(Ctx, Timing);
  EXPECT_EQ(Log, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Stats.get("log.runs"), 3u);
  EXPECT_EQ(Remarks.remarks().size(), 3u);
  ASSERT_EQ(Timing.entries().size(), 3u);
  EXPECT_EQ(Timing.entries()[0].Name, "a");
  EXPECT_EQ(Timing.entries()[2].Name, "c");
  for (const TimingEntry &E : Timing.entries()) {
    EXPECT_GE(E.Seconds, 0.0);
    EXPECT_EQ(E.Invocations, 1u);
  }
}

// --- Pass registry -------------------------------------------------------

TEST(PassRegistry, CreatesEveryRegisteredPass) {
  for (const std::string &Name : allPassNames()) {
    std::unique_ptr<KernelPass> P = createKernelPass(Name);
    ASSERT_NE(P, nullptr) << Name;
    EXPECT_EQ(P->name(), Name);
  }
  EXPECT_EQ(createKernelPass("no-such-pass"), nullptr);
}

TEST(PassRegistry, CanonicalPipelinesPerKind) {
  for (OptimizerKind Kind :
       {OptimizerKind::Scalar, OptimizerKind::Native,
        OptimizerKind::LarsenSlp, OptimizerKind::Global}) {
    std::vector<std::string> Names = canonicalPassNames(Kind);
    // Kernel verification leads (diagnostics point at the source), then
    // the transformation stages in Figure 3 order.
    EXPECT_EQ(Names.front(), "verify-kernel") << optimizerName(Kind);
    EXPECT_EQ(Names[1], "if-convert") << optimizerName(Kind);
    EXPECT_EQ(Names[2], "unroll") << optimizerName(Kind);
    EXPECT_EQ(Names.back(), "verify-vector");
    EXPECT_EQ(std::count(Names.begin(), Names.end(), "layout"), 0)
        << optimizerName(Kind);
    EXPECT_EQ(buildCanonicalPipeline(Kind).passNames(), Names);
  }
  std::vector<std::string> Layout =
      canonicalPassNames(OptimizerKind::GlobalLayout);
  EXPECT_EQ(std::count(Layout.begin(), Layout.end(), "layout"), 1);
  // Translation validation must be the final stage: the layout stage and
  // the cost guard both regenerate the vector program.
  EXPECT_EQ(Layout.back(), "verify-vector");
}

TEST(PassRegistry, BuildFromNamesRejectsUnknown) {
  PassPipeline P;
  std::string Error;
  EXPECT_FALSE(buildPipelineFromNames({"unroll", "bogus"}, P, &Error));
  EXPECT_NE(Error.find("bogus"), std::string::npos);
  EXPECT_TRUE(P.empty()); // unchanged on failure
  EXPECT_TRUE(buildPipelineFromNames({"unroll", "codegen"}, P, &Error));
  EXPECT_EQ(P.size(), 2u);
}

// --- Canonical pipeline instrumentation ----------------------------------

TEST(PassInstrumentation, VectorizedBlockReportsCountersAndTimings) {
  PipelineOptions Options;
  PipelineResult R =
      runPipeline(streamingKernel(), OptimizerKind::Global, Options);
  EXPECT_TRUE(R.Simulated);
  // One counter per ISSUE requirement: packs formed, reuses exploited,
  // permutes emitted, cost-model rejections (all present; values are
  // kernel-dependent).
  EXPECT_GT(R.Stats.get("grouping.packs-formed"), 0u);
  EXPECT_TRUE(R.Stats.has("codegen.direct-reuses"));
  EXPECT_TRUE(R.Stats.has("codegen.permutes-emitted"));
  EXPECT_EQ(R.Stats.get("cost-model.blocks-rejected"), 0u);
  // Every canonical pass produced a timing entry, in pipeline order.
  std::vector<std::string> Expected =
      canonicalPassNames(OptimizerKind::Global);
  ASSERT_EQ(R.PassTimings.entries().size(), Expected.size());
  for (unsigned I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(R.PassTimings.entries()[I].Name, Expected[I]);
  // And at least one remark explains why the block was vectorized.
  bool HasApplied = false;
  for (const Remark &Rem : R.Remarks)
    HasApplied |= Rem.Kind == RemarkKind::Applied;
  EXPECT_TRUE(HasApplied);
}

TEST(PassInstrumentation, CostGuardRejectionEmitsMissedRemark) {
  PipelineOptions Options;
  PipelineResult R =
      runPipeline(hopelessKernel(), OptimizerKind::Global, Options);
  EXPECT_FALSE(R.TransformationApplied);
  uint64_t Rejections = R.Stats.get("cost-model.blocks-rejected") +
                        R.Stats.get("cost-model.groups-demoted");
  EXPECT_GT(Rejections, 0u);
  bool HasCostRemark = false;
  for (const Remark &Rem : R.Remarks)
    HasCostRemark |= Rem.Kind == RemarkKind::Missed &&
                     (Rem.Pass == "cost-guard" || Rem.Pass == "group-prune");
  EXPECT_TRUE(HasCostRemark);
}

TEST(PassInstrumentation, ResultsMatchAcrossPipelineReuse) {
  // One PassPipeline instance reused over several kernels (as the module
  // driver's workers do) must behave like fresh pipelines.
  PipelineOptions Options;
  PassPipeline P = buildCanonicalPipeline(OptimizerKind::Global);
  PipelineResult First =
      runPassPipeline(streamingKernel(), OptimizerKind::Global, Options, P);
  runPassPipeline(hopelessKernel(), OptimizerKind::Global, Options, P);
  PipelineResult Again =
      runPassPipeline(streamingKernel(), OptimizerKind::Global, Options, P);
  EXPECT_DOUBLE_EQ(First.VectorSim.Cycles, Again.VectorSim.Cycles);
  EXPECT_EQ(First.TheSchedule.Items.size(), Again.TheSchedule.Items.size());
  EXPECT_EQ(First.Stats.get("grouping.packs-formed"),
            Again.Stats.get("grouping.packs-formed"));
}

TEST(PassInstrumentation, PartialPipelineStaysWellFormed) {
  // A hand-built list without codegen/simulate must still produce a
  // well-formed result and report that it never simulated.
  PipelineOptions Options;
  PassPipeline P;
  std::string Error;
  ASSERT_TRUE(buildPipelineFromNames(
      {"unroll", "alignment", "grouping", "scheduling"}, P, &Error))
      << Error;
  PipelineResult R =
      runPassPipeline(streamingKernel(), OptimizerKind::Global, Options, P);
  EXPECT_FALSE(R.Simulated);
  EXPECT_FALSE(R.TransformationApplied);
  EXPECT_GT(R.TheSchedule.Items.size(), 0u);
  EXPECT_EQ(R.Preprocessed.Body.size(), 4u); // unroll ran
}

TEST(PassInstrumentation, WrapperMatchesHandBuiltCanonicalPipeline) {
  // runPipeline is a thin wrapper over the pass engine: building the
  // canonical pipeline by hand must give identical results.
  PipelineOptions Options;
  PassPipeline P;
  std::string Error;
  ASSERT_TRUE(buildPipelineFromNames(
      canonicalPassNames(OptimizerKind::GlobalLayout), P, &Error));
  PipelineResult A = runPassPipeline(streamingKernel(),
                                     OptimizerKind::GlobalLayout, Options, P);
  PipelineResult B =
      runPipeline(streamingKernel(), OptimizerKind::GlobalLayout, Options);
  EXPECT_DOUBLE_EQ(A.VectorSim.Cycles, B.VectorSim.Cycles);
  EXPECT_DOUBLE_EQ(A.ScalarSim.Cycles, B.ScalarSim.Cycles);
  EXPECT_EQ(A.Program.Insts.size(), B.Program.Insts.size());
}
