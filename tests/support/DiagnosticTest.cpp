//===- tests/support/DiagnosticTest.cpp -----------------------*- C++ -*-===//
//
// The structured diagnostics framework backing the schedule verifier, the
// lane-provenance vector verifier, and the lint tier: rendering, JSON
// emission, location formatting, and the DiagnosticEngine's severity
// accounting with warnings-as-errors promotion.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

TEST(DiagLocation, EmptyAndStr) {
  DiagLocation Loc;
  EXPECT_TRUE(Loc.empty());
  EXPECT_EQ(Loc.str(), "");

  Loc.Inst = 4;
  Loc.Lane = 2;
  EXPECT_FALSE(Loc.empty());
  EXPECT_EQ(Loc.str(), "inst 4, lane 2");

  Loc.VReg = 7;
  Loc.Stmt = 3;
  Loc.Item = 1;
  EXPECT_EQ(Loc.str(), "inst 4, lane 2, vreg 7, statement 3, item 1");
}

TEST(Diagnostic, RenderWithAndWithoutLocation) {
  Diagnostic D;
  D.Code = "VV04";
  D.Severity = DiagSeverity::Error;
  D.Message = "lane value mismatch";
  EXPECT_EQ(D.render(), "error [VV04]: lane value mismatch");

  D.Loc.Inst = 4;
  D.Loc.Lane = 2;
  EXPECT_EQ(D.render(), "error [VV04] (inst 4, lane 2): lane value mismatch");

  D.Severity = DiagSeverity::Warning;
  D.Code = "VL01";
  EXPECT_EQ(D.render(), "warning [VL01] (inst 4, lane 2): lane value mismatch");
}

TEST(Diagnostic, ToJsonEscapesAndIncludesLocation) {
  Diagnostic D;
  D.Code = "SV05";
  D.Severity = DiagSeverity::Error;
  D.Message = "width \"256\" exceeded";
  D.Loc.Item = 3;
  std::string Json = D.toJson();
  EXPECT_NE(Json.find("\"code\":\"SV05\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"severity\":\"error\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\\\"256\\\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"loc\":{\"item\":3}"), std::string::npos) << Json;
}

TEST(DiagnosticEngine, CountsBySeverity) {
  DiagnosticEngine Engine;
  EXPECT_TRUE(Engine.empty());
  Engine.report("VV01", DiagSeverity::Error, "never executed");
  Engine.report("VL02", DiagSeverity::Warning, "identity permute");
  Engine.report("VV00", DiagSeverity::Note, "suppressed");
  EXPECT_EQ(Engine.errorCount(), 1u);
  EXPECT_EQ(Engine.warningCount(), 1u);
  EXPECT_EQ(Engine.count(DiagSeverity::Note), 1u);
  EXPECT_TRUE(Engine.hasErrors());
  EXPECT_EQ(Engine.all().size(), 3u);
}

TEST(DiagnosticEngine, ReportReturnsReferenceForLocation) {
  DiagnosticEngine Engine;
  Engine.report("VV06", DiagSeverity::Error, "use before def").Loc.VReg = 5;
  EXPECT_EQ(Engine.all().front().Loc.VReg, 5);
  EXPECT_EQ(Engine.all().front().render(),
            "error [VV06] (vreg 5): use before def");
}

TEST(DiagnosticEngine, WarningsAsErrorsPromotesOnlySubsequent) {
  DiagnosticEngine Engine;
  Engine.report("VL01", DiagSeverity::Warning, "before the switch");
  Engine.setWarningsAsErrors(true);
  Engine.report("VL02", DiagSeverity::Warning, "after the switch");
  Engine.report("VV00", DiagSeverity::Note, "notes are never promoted");
  EXPECT_EQ(Engine.warningCount(), 1u);
  EXPECT_EQ(Engine.errorCount(), 1u);
  EXPECT_EQ(Engine.all()[1].Severity, DiagSeverity::Error);
  EXPECT_EQ(Engine.all()[2].Severity, DiagSeverity::Note);

  Diagnostic D;
  D.Code = "VL03";
  D.Severity = DiagSeverity::Warning;
  D.Message = "added pre-built";
  Engine.add(std::move(D));
  EXPECT_EQ(Engine.errorCount(), 2u);
}

TEST(DiagnosticEngine, TakeDrainsTheEngine) {
  DiagnosticEngine Engine;
  Engine.report("SV01", DiagSeverity::Error, "missing statement");
  std::vector<Diagnostic> Taken = Engine.take();
  ASSERT_EQ(Taken.size(), 1u);
  EXPECT_EQ(Taken.front().Code, "SV01");
  EXPECT_TRUE(Engine.empty());
}

TEST(DiagnosticFreeFunctions, RenderAndCount) {
  std::vector<Diagnostic> Diags;
  Diagnostic A;
  A.Code = "VV03";
  A.Severity = DiagSeverity::Error;
  A.Message = "store to unwritten location";
  Diagnostic B;
  B.Code = "VL04";
  B.Severity = DiagSeverity::Warning;
  B.Message = "scalar reload of a live superword";
  Diags.push_back(A);
  Diags.push_back(B);

  std::string Text = renderDiagnostics(Diags);
  EXPECT_NE(Text.find("error [VV03]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("warning [VL04]"), std::string::npos) << Text;
  EXPECT_EQ(countDiagnostics(Diags, DiagSeverity::Error), 1u);
  EXPECT_EQ(countDiagnostics(Diags, DiagSeverity::Warning), 1u);

  std::string Json = diagnosticsToJson(Diags);
  EXPECT_EQ(Json.front(), '[');
  EXPECT_NE(Json.find("\"VV03\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"VL04\""), std::string::npos) << Json;
}

TEST(DiagnosticFreeFunctions, EmptyDiagnostics) {
  // The JSON surface (slpc --json, the daemon protocol) must emit a valid
  // empty array for a clean run, and the text renderer must not invent
  // a trailing newline to print.
  std::vector<Diagnostic> None;
  EXPECT_EQ(diagnosticsToJson(None), "[]");
  EXPECT_EQ(renderDiagnostics(None), "");
  EXPECT_EQ(countDiagnostics(None, DiagSeverity::Error), 0u);
  EXPECT_EQ(countDiagnostics(None, DiagSeverity::Warning), 0u);
}

TEST(Diagnostic, LocationJsonRoundTrip) {
  // Every location field survives into JSON under its stable key, in the
  // documented order, and absent (-1) fields are omitted entirely.
  Diagnostic D;
  D.Code = "SK02";
  D.Severity = DiagSeverity::Error;
  D.Message = "store out of bounds";
  D.Loc.Stmt = 3;
  D.Loc.Inst = 4;
  D.Loc.VReg = 7;
  D.Loc.Lane = 2;
  D.Loc.Item = 1;
  EXPECT_NE(D.toJson().find(
                "\"loc\":{\"stmt\":3,\"inst\":4,\"vreg\":7,\"lane\":2,"
                "\"item\":1}"),
            std::string::npos)
      << D.toJson();

  D.Loc = DiagLocation();
  D.Loc.Stmt = 0; // zero is a real statement id, not "absent"
  EXPECT_NE(D.toJson().find("\"loc\":{\"stmt\":0}"), std::string::npos)
      << D.toJson();

  D.Loc = DiagLocation();
  EXPECT_EQ(D.toJson().find("\"loc\""), std::string::npos) << D.toJson();
}

TEST(Diagnostic, SeverityOrderingIsStable) {
  // Downstream tooling compares severities numerically (a promoted
  // warning must sort with the errors); the enum order is interface.
  EXPECT_LT(static_cast<int>(DiagSeverity::Note),
            static_cast<int>(DiagSeverity::Warning));
  EXPECT_LT(static_cast<int>(DiagSeverity::Warning),
            static_cast<int>(DiagSeverity::Error));
  EXPECT_STREQ(diagSeverityName(DiagSeverity::Note), "note");
  EXPECT_STREQ(diagSeverityName(DiagSeverity::Warning), "warning");
  EXPECT_STREQ(diagSeverityName(DiagSeverity::Error), "error");
}

TEST(DiagnosticEngine, WerrorPromotionReachesJsonAndKeepsCode) {
  // The --werror path: a promoted lint keeps its SK1*/VL* code (tools
  // match on codes, not severities) but serializes as a full error.
  DiagnosticEngine Engine;
  Engine.setWarningsAsErrors(true);
  Engine.report("SK10", DiagSeverity::Warning, "loop-invariant subscript")
      .Loc.Stmt = 2;
  ASSERT_EQ(Engine.all().size(), 1u);
  const Diagnostic &D = Engine.all().front();
  EXPECT_EQ(D.Code, "SK10");
  EXPECT_EQ(D.Severity, DiagSeverity::Error);
  EXPECT_TRUE(Engine.hasErrors());
  std::string Json = D.toJson();
  EXPECT_NE(Json.find("\"code\":\"SK10\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"severity\":\"error\""), std::string::npos) << Json;
  EXPECT_EQ(Json.find("warning"), std::string::npos) << Json;

  // Switching promotion back off only affects later reports.
  Engine.setWarningsAsErrors(false);
  Engine.report("SK11", DiagSeverity::Warning, "guard always true");
  EXPECT_EQ(Engine.warningCount(), 1u);
  EXPECT_EQ(Engine.errorCount(), 1u);
  EXPECT_EQ(Engine.all().back().Severity, DiagSeverity::Warning);
}

} // namespace
