//===- tests/support/RngTest.cpp - Pinned PRNG streams ----------*- C++ -*-===//
//
// Pins the exact xorshift64* output streams. Recorded seeds everywhere —
// random-kernel tests, benchmark tables, grouping tie-breaks, and the fuzz
// corpus — depend on these bit patterns: any change to Rng (including
// "fixing" nextBelow's documented modulo bias with rejection sampling,
// which consumes a data-dependent number of raw draws) invalidates them
// all. If a test here fails, the generator changed; regenerate every
// recorded seed or revert.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace slp;

namespace {

TEST(RngTest, RawStreamSeed1) {
  Rng R(1);
  const uint64_t Expected[] = {
      0x4b46a55df3611b9bULL, 0xd7e1f1410e763ef4ULL, 0x5f14ec66975f9b06ULL,
      0x3b2c74fad44d6cdbULL, 0xdbea40d60760f050ULL, 0x8645ca872e0cd2ULL,
  };
  for (uint64_t Value : Expected)
    EXPECT_EQ(R.next(), Value);
}

TEST(RngTest, RawStreamSeed2) {
  // A neighboring seed must give an unrelated stream (splitmix64
  // scrambling in the constructor).
  Rng R(2);
  const uint64_t Expected[] = {
      0x87c7ff51a98d6f8cULL, 0x4736c78f08d3c41bULL, 0xf1ab6fee32b2b36bULL,
  };
  for (uint64_t Value : Expected)
    EXPECT_EQ(R.next(), Value);
}

TEST(RngTest, RawStreamDefaultSeed) {
  Rng R;
  const uint64_t Expected[] = {
      0x4f9b02d21cd5c0a7ULL, 0xeec189b8caeb464dULL, 0x13a5cfaf410a8524ULL,
  };
  for (uint64_t Value : Expected)
    EXPECT_EQ(R.next(), Value);
}

TEST(RngTest, NextBelowStreamSeed1) {
  Rng R(1);
  const uint64_t Expected[] = {5, 4, 0, 5, 4, 8, 9, 0, 3, 6};
  for (uint64_t Value : Expected)
    EXPECT_EQ(R.nextBelow(10), Value);
}

TEST(RngTest, NextBelowConsumesExactlyOneDraw) {
  // nextBelow must stay a single modulo reduction of one raw draw: a
  // rejection-sampling "fix" of the modulo bias would consume extra draws
  // on some calls and desynchronize every downstream seed.
  Rng A(123), B(123);
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(A.nextBelow(7), B.next() % 7);
  EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, NextInRangeStreamSeed42) {
  Rng R(42);
  const int64_t Expected[] = {4, -4, 2, 0, -3, 5, -3, 0, 5, 0};
  for (int64_t Value : Expected)
    EXPECT_EQ(R.nextInRange(-5, 5), Value);
}

TEST(RngTest, NextDoubleStreamSeed7) {
  Rng R(7);
  const double Expected[] = {
      0.081705559503605585,
      0.25826439633890563,
      0.35408453546622098,
      0.55337435629744314,
  };
  for (double Value : Expected)
    EXPECT_DOUBLE_EQ(R.nextDouble(), Value);
}

TEST(RngTest, NextDoubleStaysInUnitInterval) {
  Rng R(99);
  for (int I = 0; I != 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, NextBelowCoversFullRange) {
  // Sanity: over many draws every residue of a small bound appears. The
  // documented modulo bias (< 2^-44 per value for bounds this small) is
  // far too small to observe here.
  Rng R(5);
  std::vector<unsigned> Hits(8, 0);
  for (int I = 0; I != 4000; ++I)
    ++Hits[R.nextBelow(8)];
  for (unsigned H : Hits)
    EXPECT_GT(H, 0u);
}

} // namespace
