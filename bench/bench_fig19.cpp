//===- bench/bench_fig19.cpp - Figure 19 reproduction -----------*- C++ -*-===//
//
// Figure 19 of the paper: execution-time reductions over scalar code of
// Global and Global+Layout on the Intel machine. The paper marks the
// benchmarks where the data layout stage brings additional benefit
// (seven of sixteen) and reports a maximum advantage of Global+Layout
// over SLP of about 15.2%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace slp;
using namespace slp::bench;

static void printFigure19() {
  std::printf("Figure 19: execution time reduction over scalar code "
              "(Intel machine)\n");
  std::printf("%-11s %8s %14s %8s\n", "benchmark", "Global",
              "Global+Layout", "layout?");

  double SumG = 0, SumL = 0, MaxOverSlp = 0;
  std::string MaxName;
  unsigned LayoutHelped = 0;
  std::vector<Workload> Suite = standardWorkloads();
  for (const Workload &W : Suite) {
    SchemeResults R = runAllSchemes(W, MachineModel::intelDunnington());
    double G = 100.0 * R.Global.improvement();
    double L = 100.0 * R.GlobalLayout.improvement();
    bool Helped = L > G + 0.05;
    LayoutHelped += Helped;
    double OverSlp = L - 100.0 * R.Slp.improvement();
    if (OverSlp > MaxOverSlp) {
      MaxOverSlp = OverSlp;
      MaxName = W.Name;
    }
    SumG += G;
    SumL += L;
    std::printf("%-11s %7.2f%% %13.2f%% %8s\n", W.Name.c_str(), G, L,
                Helped ? "[+]" : "");
  }
  std::printf("%-11s %7.2f%% %13.2f%%\n", "average", SumG / Suite.size(),
              SumL / Suite.size());
  std::printf("\nlayout brings additional benefit on %u benchmarks "
              "(paper: 7)\n",
              LayoutHelped);
  std::printf("highest improvement of Global+Layout over SLP: %.2f%% on %s "
              "(paper: ~15.2%%)\n\n",
              MaxOverSlp, MaxName.c_str());
}

int main(int argc, char **argv) {
  printFigure19();
  registerOptimizerTimer("fig19/global+layout/cactusADM", "cactusADM",
                         OptimizerKind::GlobalLayout,
                         MachineModel::intelDunnington());
  registerOptimizerTimer("fig19/global+layout/ft", "ft",
                         OptimizerKind::GlobalLayout,
                         MachineModel::intelDunnington());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
