//===- bench/bench_service.cpp - slpd latency/QPS load benchmark -*- C++ -*-===//
//
// The load generator for compilation-as-a-service: boots an in-process
// ServiceServer on a private Unix socket (a real daemon minus the fork),
// then drives it the way a build farm would — batched compile requests
// over the framed wire protocol, mixed hit rates, concurrent clients.
//
// Phases, in order:
//
//  1. **Bit-identity (pre-timing)** — every artifact the daemon serves for
//     the 16-workload suite must be byte-identical to what
//     compileServiceArtifact produces directly in this process. A timing
//     number for a cache that can serve wrong bytes is meaningless, so a
//     mismatch is fatal, before any clock starts.
//  2. **Latency** — cold compiles (uniquely renamed kernels, so every one
//     misses) vs warm hits, single-kernel requests over one connection;
//     p50/p95/p99 of each. The binary exits non-zero unless warm p50 is
//     at least 10x better than cold p50 (the ISSUE's acceptance floor).
//  3. **QPS sweeps** — hit-rate mixes (100/90/50%) x batch sizes (1/8),
//     four client threads each with its own connection; sustained
//     requests/s and kernels/s per configuration.
//  4. **Restart** — stop the daemon, boot a fresh one over the same cache
//     directory, replay the suite: at least 90% of the prior working set
//     must come back from the persistent tier (also fatal otherwise).
//
// Also registers google-benchmark entries (service/latency, service/qps/*,
// service/restart) whose counters carry the measured percentiles, QPS,
// and disk-hit rate; bench/service_baseline.json pins them and CI gates
// with tools/check_bench_regression.py — --min-ratio for the
// bigger-is-better gauges (warm_speedup, qps, disk_hit_rate) and
// --max-ratio for the lower-is-better latency counter (warm_p99_us).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "service/Client.h"
#include "service/Server.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace slp;

namespace {

namespace fs = std::filesystem;

[[noreturn]] void fatal(const std::string &Why) {
  std::fprintf(stderr, "FATAL: bench_service: %s\n", Why.c_str());
  std::exit(1);
}

/// Unique-suffix source for cold kernels: the kernel name is part of the
/// printed text, and the text is part of the cache key, so renaming is
/// all it takes to force a miss.
std::atomic<uint64_t> ColdCounter{0};

std::string coldVariant(const Kernel &K) {
  Kernel Cold = K;
  Cold.Name += "_cold" + std::to_string(ColdCounter.fetch_add(1));
  return printKernel(Cold);
}

ServiceClient connectOrDie(const std::string &SocketPath) {
  std::string Err;
  std::optional<ServiceClient> C = ServiceClient::connect(SocketPath, &Err);
  if (!C)
    fatal("cannot connect to '" + SocketPath + "': " + Err);
  return std::move(*C);
}

/// One compile round trip; fatal on any transport or server error (this
/// benchmark has no fallback path — a failed request is a broken daemon).
ServiceReply compileOrDie(ServiceClient &Client,
                          std::vector<std::string> Kernels,
                          const ServiceOptions &Options) {
  ServiceRequest Request;
  Request.Type = ServiceRequestType::Compile;
  Request.Options = Options;
  Request.Kernels = std::move(Kernels);
  ServiceReply Reply;
  std::string Err;
  if (!Client.roundTrip(Request, Reply, &Err))
    fatal("round trip failed: " + Err);
  if (!Reply.Ok)
    fatal("server error: " + Reply.Error);
  if (Reply.Results.size() != Request.Kernels.size())
    fatal("result count mismatch");
  return Reply;
}

double percentileUs(std::vector<double> Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Idx = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

using Clock = std::chrono::steady_clock;

double elapsedUs(Clock::time_point Start, Clock::time_point End) {
  return std::chrono::duration<double, std::micro>(End - Start).count();
}

struct LatencyStats {
  double ColdP50 = 0, ColdP95 = 0, ColdP99 = 0;
  double WarmP50 = 0, WarmP95 = 0, WarmP99 = 0;
  double warmSpeedup() const {
    return WarmP50 > 0 ? ColdP50 / WarmP50 : 0;
  }
};

struct QpsConfig {
  unsigned HitPct;
  unsigned Batch;
  double Qps = 0;        ///< sustained requests/s across all clients
  double KernelsPerSec = 0;
  std::string name() const {
    return "service/qps/mix" + std::to_string(HitPct) + "/batch" +
           std::to_string(Batch);
  }
};

/// Phase 1: serve the suite cold and demand byte-identity against direct
/// in-process compiles before any timing happens.
void assertBitIdentity(ServiceClient &Client,
                       const std::vector<std::string> &Suite,
                       const std::vector<std::string> &Names,
                       const ServiceOptions &Options) {
  ServiceReply Reply = compileOrDie(Client, Suite, Options);
  for (size_t I = 0; I != Suite.size(); ++I) {
    if (Reply.Results[I].Status != CacheStatus::Miss)
      fatal("expected a cold miss for '" + Names[I] + "', got " +
            cacheStatusName(Reply.Results[I].Status));
    std::string Direct, Err;
    if (!compileServiceArtifact(Suite[I], Options, Direct, &Err))
      fatal("direct compile of '" + Names[I] + "' failed: " + Err);
    if (Reply.Results[I].Artifact != Direct)
      fatal("served artifact for '" + Names[I] +
            "' is not byte-identical to a direct compile");
  }
  std::printf("bit-identity: %zu/%zu served artifacts byte-identical to "
              "direct compiles\n",
              Suite.size(), Suite.size());
}

/// Phase 2: cold vs warm single-kernel latency over one connection.
LatencyStats measureLatency(ServiceClient &Client,
                            const std::vector<Kernel> &Kernels,
                            const std::vector<std::string> &Suite,
                            const ServiceOptions &Options) {
  constexpr unsigned ColdPerWorkload = 2;
  constexpr unsigned WarmSamples = 200;

  std::vector<double> Cold;
  for (const Kernel &K : Kernels)
    for (unsigned V = 0; V != ColdPerWorkload; ++V) {
      std::string Text = coldVariant(K);
      auto Start = Clock::now();
      ServiceReply Reply = compileOrDie(Client, {Text}, Options);
      Cold.push_back(elapsedUs(Start, Clock::now()));
      if (Reply.Results[0].Status != CacheStatus::Miss)
        fatal("cold variant unexpectedly hit the cache");
    }

  std::vector<double> Warm;
  for (unsigned I = 0; I != WarmSamples; ++I) {
    const std::string &Text = Suite[I % Suite.size()];
    auto Start = Clock::now();
    ServiceReply Reply = compileOrDie(Client, {Text}, Options);
    Warm.push_back(elapsedUs(Start, Clock::now()));
    if (Reply.Results[0].Status != CacheStatus::MemoryHit)
      fatal("warm sample was not a memory hit");
  }

  LatencyStats S;
  S.ColdP50 = percentileUs(Cold, 0.50);
  S.ColdP95 = percentileUs(Cold, 0.95);
  S.ColdP99 = percentileUs(Cold, 0.99);
  S.WarmP50 = percentileUs(Warm, 0.50);
  S.WarmP95 = percentileUs(Warm, 0.95);
  S.WarmP99 = percentileUs(Warm, 0.99);
  return S;
}

/// Phase 3: one QPS configuration — \p Threads clients, each issuing
/// \p RequestsPerThread batches where ~HitPct% of kernels are warm suite
/// members and the rest are uniquely renamed (guaranteed cold).
void measureQps(QpsConfig &C, const std::string &SocketPath,
                const std::vector<Kernel> &Kernels,
                const std::vector<std::string> &Suite,
                const ServiceOptions &Options) {
  constexpr unsigned Threads = 4;
  constexpr unsigned RequestsPerThread = 25;

  std::vector<std::thread> Pool;
  auto Start = Clock::now();
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      ServiceClient Client = connectOrDie(SocketPath);
      unsigned Stream = T; // de-phases the warm round-robin across clients
      for (unsigned R = 0; R != RequestsPerThread; ++R) {
        std::vector<std::string> Batch;
        for (unsigned J = 0; J != C.Batch; ++J, ++Stream) {
          bool WantWarm = (Stream * 37 % 100) < C.HitPct;
          if (WantWarm)
            Batch.push_back(Suite[Stream % Suite.size()]);
          else
            Batch.push_back(coldVariant(Kernels[Stream % Kernels.size()]));
        }
        compileOrDie(Client, std::move(Batch), Options);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  double Seconds = elapsedUs(Start, Clock::now()) * 1e-6;
  double Requests = static_cast<double>(Threads) * RequestsPerThread;
  C.Qps = Requests / Seconds;
  C.KernelsPerSec = Requests * C.Batch / Seconds;
}

/// Phase 4: replay the suite against a daemon rebooted over the same
/// cache directory; returns the fraction served from the persistent tier.
double measureRestart(const std::string &SocketPath,
                      const std::vector<std::string> &Suite,
                      const ServiceOptions &Options) {
  ServiceClient Client = connectOrDie(SocketPath);
  ServiceReply Reply = compileOrDie(Client, Suite, Options);
  uint64_t Kernels = Reply.counter("service.kernels");
  uint64_t DiskHits = Reply.counter("service.hits-disk");
  if (Kernels != Suite.size())
    fatal("restart pass reported the wrong kernel count");
  return static_cast<double>(DiskHits) / static_cast<double>(Kernels);
}

} // namespace

int main(int argc, char **argv) {
  // A private socket + cache directory per run; removed at exit.
  char Template[] = "/tmp/slp-bench-service-XXXXXX";
  if (!::mkdtemp(Template))
    fatal("mkdtemp failed");
  std::string BaseDir = Template;
  std::string SocketPath = BaseDir + "/slpd.sock";

  ServerConfig Config;
  Config.SocketPath = SocketPath;
  Config.Cache.DiskDir = BaseDir + "/cache";
  ServiceOptions Options; // defaults: global+layout, equivalence on

  std::vector<Kernel> Kernels;
  std::vector<std::string> Suite, Names;
  for (const Workload &W : standardWorkloads()) {
    Kernels.push_back(W.TheKernel);
    Suite.push_back(printKernel(W.TheKernel));
    Names.push_back(W.Name);
  }

  std::printf("slpd load benchmark: in-process daemon, Unix socket, "
              "%zu-workload suite\n",
              Suite.size());

  auto Server = std::make_unique<ServiceServer>(Config);
  std::string Err;
  if (!Server->start(&Err))
    fatal("cannot start server: " + Err);

  ServiceClient Client = connectOrDie(SocketPath);
  assertBitIdentity(Client, Suite, Names, Options);

  LatencyStats Latency = measureLatency(Client, Kernels, Suite, Options);
  std::printf("latency (us): cold p50/p95/p99 = %.0f/%.0f/%.0f   "
              "warm p50/p95/p99 = %.1f/%.1f/%.1f   warm speedup = %.0fx\n",
              Latency.ColdP50, Latency.ColdP95, Latency.ColdP99,
              Latency.WarmP50, Latency.WarmP95, Latency.WarmP99,
              Latency.warmSpeedup());
  if (Latency.warmSpeedup() < 10.0)
    fatal("warm p50 is not >= 10x better than cold p50 (got " +
          std::to_string(Latency.warmSpeedup()) + "x)");

  std::vector<QpsConfig> QpsConfigs = {
      {100, 1}, {100, 8}, {90, 1}, {90, 8}, {50, 1}, {50, 8}};
  for (QpsConfig &C : QpsConfigs) {
    measureQps(C, SocketPath, Kernels, Suite, Options);
    std::printf("qps: mix=%3u%% batch=%u -> %8.0f req/s (%8.0f kernels/s)\n",
                C.HitPct, C.Batch, C.Qps, C.KernelsPerSec);
  }

  // Reboot over the same cache directory: the working set must come back
  // from disk, not be recompiled.
  Server->stop();
  Server = std::make_unique<ServiceServer>(Config);
  if (!Server->start(&Err))
    fatal("cannot restart server: " + Err);
  double DiskHitRate = measureRestart(SocketPath, Suite, Options);
  std::printf("restart: %.0f%% of the working set served from the "
              "persistent tier\n",
              100.0 * DiskHitRate);
  if (DiskHitRate < 0.9)
    fatal("daemon restart served < 90% from the persistent tier");

  // google-benchmark entries: the loops time live warm round trips against
  // the rebooted daemon; the counters export the one-shot phase
  // measurements so the JSON artifact (and the CI gates) carry them.
  benchmark::RegisterBenchmark("service/latency", [&](benchmark::State &S) {
    ServiceClient C = connectOrDie(SocketPath);
    for (auto _ : S) {
      ServiceReply Reply = compileOrDie(C, {Suite[0]}, Options);
      benchmark::DoNotOptimize(Reply.Results[0].Artifact.data());
    }
    S.counters["cold_p50_us"] = Latency.ColdP50;
    S.counters["warm_p50_us"] = Latency.WarmP50;
    S.counters["warm_p95_us"] = Latency.WarmP95;
    S.counters["warm_p99_us"] = Latency.WarmP99;
    S.counters["warm_speedup"] = Latency.warmSpeedup();
  });
  for (const QpsConfig &C : QpsConfigs)
    benchmark::RegisterBenchmark(
        C.name().c_str(), [&, C](benchmark::State &S) {
          ServiceClient Conn = connectOrDie(SocketPath);
          std::vector<std::string> Batch;
          for (unsigned J = 0; J != C.Batch; ++J)
            Batch.push_back(Suite[J % Suite.size()]);
          for (auto _ : S) {
            ServiceReply Reply = compileOrDie(Conn, Batch, Options);
            benchmark::DoNotOptimize(Reply.Results[0].Artifact.data());
          }
          S.counters["qps"] = C.Qps;
          S.counters["kernels_per_sec"] = C.KernelsPerSec;
        });
  benchmark::RegisterBenchmark("service/restart", [&](benchmark::State &S) {
    ServiceClient C = connectOrDie(SocketPath);
    for (auto _ : S) {
      ServiceReply Reply = compileOrDie(C, {Suite[0]}, Options);
      benchmark::DoNotOptimize(Reply.Results[0].Artifact.data());
    }
    S.counters["disk_hit_rate"] = DiskHitRate;
  });

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  Server->stop();
  std::error_code Ec;
  fs::remove_all(BaseDir, Ec);
  return 0;
}
