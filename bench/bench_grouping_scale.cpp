//===- bench/bench_grouping_scale.cpp - Grouping scalability ----*- C++ -*-===//
//
// Charts statement-grouping wall-clock against basic-block size for the
// optimized engine versus the retained reference transcription of Figure
// 10, on synthetic blocks from syntheticGroupingBlock (64 → 2048
// statements). Before timing, both engines run once and their groupings
// are compared — the speedup claim is only meaningful if the outputs are
// bit-identical. The exact engine joins the comparison with a weight
// ordering instead of equality (its packing may legitimately differ):
// per size, SelectionWeight(Exact) >= SelectionWeight(Optimized) >= 0
// (the no-packing weight) must hold whenever the exact search proved
// optimality.
//
// --regret switches to the heuristic-regret table (docs/exact-grouping.md):
// the full Global pipeline runs once per standard + predicated workload
// under the Optimized and Exact grouping engines, and the table reports
// packs, permutes, cost-model cycles, and the selection weight of both,
// plus whether the exact search proved per-round optimality. The same
// rows are registered as regret/<workload> google-benchmark entries whose
// weight_ratio counter (exact/heuristic selection weight) is gated by
// tools/check_bench_regression.py --min-ratio against
// bench/grouping_regret_baseline.json, so the exact engine can never
// silently report a worse packing than the greedy heuristic.
//
// Also registers google-benchmark entries (grouping/<engine>/<size>) so CI
// can track the numbers as JSON; bench/grouping_scale_baseline.json holds
// the checked-in reference numbers the compile-time smoke job gates on.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "slp/Grouping.h"
#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace slp;

namespace {

Kernel makeBlock(unsigned NumStatements) {
  SyntheticBlockOptions Options;
  Options.NumStatements = NumStatements;
  return syntheticGroupingBlock(Options);
}

bool sameGrouping(const GroupingResult &A, const GroupingResult &B) {
  if (A.Singles != B.Singles || A.Groups.size() != B.Groups.size())
    return false;
  for (unsigned G = 0, E = static_cast<unsigned>(A.Groups.size()); G != E;
       ++G)
    if (A.Groups[G].Members != B.Groups[G].Members)
      return false;
  return true;
}

double timeGrouping(const Kernel &K, const DependenceInfo &Deps,
                    GroupingImpl Impl, unsigned Reps) {
  GroupingOptions GO;
  GO.Impl = Impl;
  auto Start = std::chrono::steady_clock::now();
  size_t Sink = 0;
  for (unsigned I = 0; I != Reps; ++I)
    Sink += groupStatementsGlobal(K, Deps, GO).Groups.size();
  auto End = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Sink);
  return std::chrono::duration<double>(End - Start).count() / Reps;
}

void printScalingTable() {
  std::printf("Grouping wall-clock: optimized vs reference engine "
              "(identical groupings asserted per size)\n");
  std::printf("%6s %10s %12s %14s %14s %9s %12s\n", "stmts", "cands",
              "rounds", "optimized(ms)", "reference(ms)", "speedup",
              "exactW/optW");
  for (unsigned N : {64u, 128u, 256u, 512u, 1024u}) {
    Kernel K = makeBlock(N);
    DependenceInfo Deps(K);

    GroupingOptions GO;
    GroupingTelemetry T;
    GO.Impl = GroupingImpl::Optimized;
    GroupingResult Opt = groupStatementsGlobal(K, Deps, GO, &T);
    GO.Impl = GroupingImpl::Reference;
    GroupingResult Ref = groupStatementsGlobal(K, Deps, GO);
    if (!sameGrouping(Opt, Ref)) {
      std::fprintf(stderr,
                   "FATAL: engines disagree at %u statements — the "
                   "optimized grouping is not bit-identical\n",
                   N);
      std::exit(1);
    }

    // The exact engine is *not* held to grouping equality — an optimal
    // selection may differ from the greedy one. The invariant is the
    // weight ordering Exact >= Optimized >= 0 (no packing at all), and
    // only when the search proved optimality (a fallback reproduces the
    // greedy selection, making the ordering trivially tight). Large
    // synthetic blocks exhaust any sane budget, so the exact run stops at
    // 256 statements.
    char ExactCol[32];
    std::snprintf(ExactCol, sizeof(ExactCol), "-");
    if (N <= 256) {
      GroupingTelemetry ET;
      GO.Impl = GroupingImpl::Exact;
      GroupingResult Ex = groupStatementsGlobal(K, Deps, GO, &ET);
      benchmark::DoNotOptimize(Ex.Groups.data());
      if (ET.ExactProvedOptimal) {
        if (ET.SelectionWeight + 1e-9 < T.SelectionWeight ||
            T.SelectionWeight < -1e-9) {
          std::fprintf(stderr,
                       "FATAL: exact selection weight %.6f below the "
                       "greedy %.6f at %u statements — the bound or the "
                       "search is broken\n",
                       ET.SelectionWeight, T.SelectionWeight, N);
          std::exit(1);
        }
        std::snprintf(ExactCol, sizeof(ExactCol), "%.4f",
                      T.SelectionWeight > 0
                          ? ET.SelectionWeight / T.SelectionWeight
                          : 1.0);
      } else {
        std::snprintf(ExactCol, sizeof(ExactCol), "fallback");
      }
    }

    unsigned Reps = N <= 256 ? 5 : (N <= 512 ? 3 : 1);
    double OptSec = timeGrouping(K, Deps, GroupingImpl::Optimized, Reps);
    double RefSec = timeGrouping(K, Deps, GroupingImpl::Reference, Reps);
    std::printf("%6u %10llu %12llu %14.2f %14.2f %8.1fx %12s\n", N,
                static_cast<unsigned long long>(T.Candidates),
                static_cast<unsigned long long>(T.Rounds), 1e3 * OptSec,
                1e3 * RefSec, RefSec / OptSec, ExactCol);
  }
  // The reference engine is left out at 2048: the point of the optimized
  // engine is that this size stays interactive at all.
  {
    Kernel K = makeBlock(2048);
    DependenceInfo Deps(K);
    GroupingOptions GO;
    GroupingTelemetry T;
    GroupingResult Opt = groupStatementsGlobal(K, Deps, GO, &T);
    benchmark::DoNotOptimize(Opt.Groups.data());
    double OptSec = timeGrouping(K, Deps, GroupingImpl::Optimized, 1);
    std::printf("%6u %10llu %12llu %14.2f %14s %9s %12s\n\n", 2048,
                static_cast<unsigned long long>(T.Candidates),
                static_cast<unsigned long long>(T.Rounds), 1e3 * OptSec,
                "-", "-", "-");
  }
}

void registerGroupingBench(unsigned N, GroupingImpl Impl) {
  std::string Label =
      std::string("grouping/") + groupingImplName(Impl) + "/" +
      std::to_string(N);
  benchmark::RegisterBenchmark(
      Label.c_str(), [N, Impl](benchmark::State &S) {
        Kernel K = makeBlock(N);
        DependenceInfo Deps(K);
        GroupingOptions GO;
        GO.Impl = Impl;
        GroupingTelemetry T;
        for (auto _ : S) {
          GroupingResult R = groupStatementsGlobal(K, Deps, GO, &T);
          benchmark::DoNotOptimize(R.Groups.data());
        }
        S.counters["candidates"] = benchmark::Counter(
            static_cast<double>(T.Candidates),
            benchmark::Counter::kAvgIterations);
        S.counters["aux_nodes"] = benchmark::Counter(
            static_cast<double>(T.AuxNodes),
            benchmark::Counter::kAvgIterations);
      });
}

//===----------------------------------------------------------------------===//
// Heuristic-regret table (--regret)
//===----------------------------------------------------------------------===//

/// One workload's heuristic-vs-exact comparison, from two full Global
/// pipeline runs differing only in the grouping engine.
struct RegretRow {
  std::string Name;
  uint64_t HeurPacks = 0, ExactPacks = 0;
  uint64_t HeurPermutes = 0, ExactPermutes = 0;
  uint64_t HeurWeightMilli = 0, ExactWeightMilli = 0;
  double HeurCycles = 0, ExactCycles = 0;
  uint64_t Nodes = 0, Fallbacks = 0;
  bool Proved = false;

  /// exact/heuristic selection weight. Equal-within-a-milli reads as
  /// exactly 1.0 so integer rounding of the milli counters can never trip
  /// a >= 1.0 CI gate; a packless workload (both weights 0) is 1.0 too.
  double weightRatio() const {
    int64_t H = static_cast<int64_t>(HeurWeightMilli);
    int64_t E = static_cast<int64_t>(ExactWeightMilli);
    if (H == 0 || (E >= H - 1 && E <= H + 1))
      return E > H + 1 ? 2.0 : 1.0;
    return static_cast<double>(E) / static_cast<double>(H);
  }
};

PipelineResult runWorkloadPipeline(const Workload &W, GroupingImpl Impl) {
  PipelineOptions Options;
  Options.GroupingEngine = Impl;
  if (const char *Env = std::getenv("SLP_EXACT_BUDGET"))
    Options.ExactBudget = std::strtoull(Env, nullptr, 10);
  // This is a metrics table, not a correctness harness (the differential
  // tests own that); skip the static verifier so the table stays fast.
  Options.VerifyVector = false;
  return runPipeline(W.TheKernel, OptimizerKind::Global, Options);
}

RegretRow regretRowFor(const Workload &W) {
  RegretRow Row;
  Row.Name = W.Name;
  PipelineResult H = runWorkloadPipeline(W, GroupingImpl::Optimized);
  PipelineResult E = runWorkloadPipeline(W, GroupingImpl::Exact);
  Row.HeurPacks = H.Stats.get("grouping.packs-formed");
  Row.ExactPacks = E.Stats.get("grouping.packs-formed");
  Row.HeurPermutes = H.Stats.get("codegen.permutes-emitted");
  Row.ExactPermutes = E.Stats.get("codegen.permutes-emitted");
  Row.HeurWeightMilli = H.Stats.get("grouping.selection-weight-milli");
  Row.ExactWeightMilli = E.Stats.get("grouping.selection-weight-milli");
  Row.HeurCycles = H.VectorSim.Cycles;
  Row.ExactCycles = E.VectorSim.Cycles;
  Row.Nodes = E.Stats.get("grouping.exact-nodes");
  Row.Fallbacks = E.Stats.get("grouping.exact-fallbacks");
  Row.Proved = E.Stats.get("grouping.exact-proved-optimal") != 0;
  return Row;
}

std::vector<RegretRow> computeRegretRows() {
  std::vector<RegretRow> Rows;
  for (const Workload &W : standardWorkloads())
    Rows.push_back(regretRowFor(W));
  for (const Workload &W : predicatedWorkloads())
    Rows.push_back(regretRowFor(W));
  return Rows;
}

void printRegretTable(const std::vector<RegretRow> &Rows) {
  std::printf("Heuristic regret: greedy (Figure 10) vs exact pack "
              "selection, full Global pipeline per workload\n");
  std::printf("%-18s %6s %6s %8s %8s %10s %10s %9s %9s %8s %9s\n",
              "workload", "packsH", "packsX", "permH", "permX", "cyclesH",
              "cyclesX", "weightH", "weightX", "ratio", "proved");
  unsigned Proved = 0;
  for (const RegretRow &R : Rows) {
    std::printf("%-18s %6llu %6llu %8llu %8llu %10.1f %10.1f %9.3f "
                "%9.3f %7.4fx %9s\n",
                R.Name.c_str(),
                static_cast<unsigned long long>(R.HeurPacks),
                static_cast<unsigned long long>(R.ExactPacks),
                static_cast<unsigned long long>(R.HeurPermutes),
                static_cast<unsigned long long>(R.ExactPermutes),
                R.HeurCycles, R.ExactCycles,
                static_cast<double>(R.HeurWeightMilli) / 1000.0,
                static_cast<double>(R.ExactWeightMilli) / 1000.0,
                R.weightRatio(),
                R.Proved ? "yes"
                         : ("fallback(" + std::to_string(R.Fallbacks) + ")")
                               .c_str());
    if (R.Proved)
      ++Proved;
    // The hard invariant the CI gate pins: the exact engine never reports
    // a worse packing weight than the greedy heuristic. When the search
    // proved optimality this is a theorem (per round); on fallback the
    // greedy selection itself was committed, so the weights are equal.
    if (R.weightRatio() < 1.0) {
      std::fprintf(stderr,
                   "FATAL: exact selection weight below the greedy one "
                   "for workload '%s' (%llu vs %llu milli)\n",
                   R.Name.c_str(),
                   static_cast<unsigned long long>(R.ExactWeightMilli),
                   static_cast<unsigned long long>(R.HeurWeightMilli));
      std::exit(1);
    }
  }
  uint64_t Budget = DefaultExactNodeBudget;
  if (const char *Env = std::getenv("SLP_EXACT_BUDGET"))
    Budget = std::strtoull(Env, nullptr, 10);
  std::printf("\n%u/%zu workloads solved to proven per-round optimality "
              "with a budget of %llu nodes\n\n",
              Proved, Rows.size(), static_cast<unsigned long long>(Budget));
}

void registerRegretBench(const RegretRow &Row, const Workload &W) {
  std::string Label = std::string("regret/") + Row.Name;
  RegretRow R = Row;
  Workload WL = W;
  benchmark::RegisterBenchmark(
      Label.c_str(), [R, WL](benchmark::State &S) {
        for (auto _ : S) {
          PipelineResult E = runWorkloadPipeline(WL, GroupingImpl::Exact);
          benchmark::DoNotOptimize(E.Program.Insts.data());
        }
        S.counters["weight_ratio"] = R.weightRatio();
        S.counters["heuristic_weight_milli"] =
            static_cast<double>(R.HeurWeightMilli);
        S.counters["exact_weight_milli"] =
            static_cast<double>(R.ExactWeightMilli);
        S.counters["heuristic_cycles"] = R.HeurCycles;
        S.counters["exact_cycles"] = R.ExactCycles;
        S.counters["proved_optimal"] = R.Proved ? 1.0 : 0.0;
        S.counters["exact_nodes"] = static_cast<double>(R.Nodes);
      });
}

} // namespace

int main(int argc, char **argv) {
  // Strip our own --regret flag before google-benchmark sees argv.
  bool Regret = false;
  int OutArgc = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--regret") == 0)
      Regret = true;
    else
      argv[OutArgc++] = argv[I];
  }
  argc = OutArgc;

  if (Regret) {
    std::vector<RegretRow> Rows = computeRegretRows();
    printRegretTable(Rows);
    std::vector<Workload> All = standardWorkloads();
    for (const Workload &W : predicatedWorkloads())
      All.push_back(W);
    for (unsigned I = 0; I != Rows.size(); ++I)
      registerRegretBench(Rows[I], All[I]);
  } else {
    printScalingTable();
    for (unsigned N : {64u, 128u, 256u, 512u, 1024u, 2048u})
      registerGroupingBench(N, GroupingImpl::Optimized);
    // Reference entries stop at 512 statements: large sizes exist to show
    // the optimized engine's headroom, not to stall CI.
    for (unsigned N : {64u, 128u, 256u, 512u})
      registerGroupingBench(N, GroupingImpl::Reference);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
