//===- bench/bench_grouping_scale.cpp - Grouping scalability ----*- C++ -*-===//
//
// Charts statement-grouping wall-clock against basic-block size for the
// optimized engine versus the retained reference transcription of Figure
// 10, on synthetic blocks from syntheticGroupingBlock (64 → 2048
// statements). Before timing, both engines run once and their groupings
// are compared — the speedup claim is only meaningful if the outputs are
// bit-identical.
//
// Also registers google-benchmark entries (grouping/<engine>/<size>) so CI
// can track the numbers as JSON; bench/grouping_scale_baseline.json holds
// the checked-in reference numbers the compile-time smoke job gates on.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "slp/Grouping.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace slp;

namespace {

Kernel makeBlock(unsigned NumStatements) {
  SyntheticBlockOptions Options;
  Options.NumStatements = NumStatements;
  return syntheticGroupingBlock(Options);
}

bool sameGrouping(const GroupingResult &A, const GroupingResult &B) {
  if (A.Singles != B.Singles || A.Groups.size() != B.Groups.size())
    return false;
  for (unsigned G = 0, E = static_cast<unsigned>(A.Groups.size()); G != E;
       ++G)
    if (A.Groups[G].Members != B.Groups[G].Members)
      return false;
  return true;
}

double timeGrouping(const Kernel &K, const DependenceInfo &Deps,
                    GroupingImpl Impl, unsigned Reps) {
  GroupingOptions GO;
  GO.Impl = Impl;
  auto Start = std::chrono::steady_clock::now();
  size_t Sink = 0;
  for (unsigned I = 0; I != Reps; ++I)
    Sink += groupStatementsGlobal(K, Deps, GO).Groups.size();
  auto End = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Sink);
  return std::chrono::duration<double>(End - Start).count() / Reps;
}

void printScalingTable() {
  std::printf("Grouping wall-clock: optimized vs reference engine "
              "(identical groupings asserted per size)\n");
  std::printf("%6s %10s %12s %14s %14s %9s\n", "stmts", "cands", "rounds",
              "optimized(ms)", "reference(ms)", "speedup");
  for (unsigned N : {64u, 128u, 256u, 512u, 1024u}) {
    Kernel K = makeBlock(N);
    DependenceInfo Deps(K);

    GroupingOptions GO;
    GroupingTelemetry T;
    GO.Impl = GroupingImpl::Optimized;
    GroupingResult Opt = groupStatementsGlobal(K, Deps, GO, &T);
    GO.Impl = GroupingImpl::Reference;
    GroupingResult Ref = groupStatementsGlobal(K, Deps, GO);
    if (!sameGrouping(Opt, Ref)) {
      std::fprintf(stderr,
                   "FATAL: engines disagree at %u statements — the "
                   "optimized grouping is not bit-identical\n",
                   N);
      std::exit(1);
    }

    unsigned Reps = N <= 256 ? 5 : (N <= 512 ? 3 : 1);
    double OptSec = timeGrouping(K, Deps, GroupingImpl::Optimized, Reps);
    double RefSec = timeGrouping(K, Deps, GroupingImpl::Reference, Reps);
    std::printf("%6u %10llu %12llu %14.2f %14.2f %8.1fx\n", N,
                static_cast<unsigned long long>(T.Candidates),
                static_cast<unsigned long long>(T.Rounds), 1e3 * OptSec,
                1e3 * RefSec, RefSec / OptSec);
  }
  // The reference engine is left out at 2048: the point of the optimized
  // engine is that this size stays interactive at all.
  {
    Kernel K = makeBlock(2048);
    DependenceInfo Deps(K);
    GroupingOptions GO;
    GroupingTelemetry T;
    GroupingResult Opt = groupStatementsGlobal(K, Deps, GO, &T);
    benchmark::DoNotOptimize(Opt.Groups.data());
    double OptSec = timeGrouping(K, Deps, GroupingImpl::Optimized, 1);
    std::printf("%6u %10llu %12llu %14.2f %14s %9s\n\n", 2048,
                static_cast<unsigned long long>(T.Candidates),
                static_cast<unsigned long long>(T.Rounds), 1e3 * OptSec,
                "-", "-");
  }
}

void registerGroupingBench(unsigned N, GroupingImpl Impl) {
  std::string Label =
      std::string("grouping/") + groupingImplName(Impl) + "/" +
      std::to_string(N);
  benchmark::RegisterBenchmark(
      Label.c_str(), [N, Impl](benchmark::State &S) {
        Kernel K = makeBlock(N);
        DependenceInfo Deps(K);
        GroupingOptions GO;
        GO.Impl = Impl;
        GroupingTelemetry T;
        for (auto _ : S) {
          GroupingResult R = groupStatementsGlobal(K, Deps, GO, &T);
          benchmark::DoNotOptimize(R.Groups.data());
        }
        S.counters["candidates"] = benchmark::Counter(
            static_cast<double>(T.Candidates),
            benchmark::Counter::kAvgIterations);
        S.counters["aux_nodes"] = benchmark::Counter(
            static_cast<double>(T.AuxNodes),
            benchmark::Counter::kAvgIterations);
      });
}

} // namespace

int main(int argc, char **argv) {
  printScalingTable();

  for (unsigned N : {64u, 128u, 256u, 512u, 1024u, 2048u})
    registerGroupingBench(N, GroupingImpl::Optimized);
  // Reference entries stop at 512 statements: large sizes exist to show
  // the optimized engine's headroom, not to stall CI.
  for (unsigned N : {64u, 128u, 256u, 512u})
    registerGroupingBench(N, GroupingImpl::Reference);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
