//===- bench/bench_fig21.cpp - Figure 21 reproduction -----------*- C++ -*-===//
//
// Figure 21 of the paper: execution-time reductions of (a) Global and
// (b) Global+Layout over the scalar code for the multithreaded NAS
// benchmarks, with both versions running on the same number of cores
// (1 to 12) of the Intel Dunnington machine. The paper observes consistent
// improvements that become slightly better as cores are added, due to the
// less-than-perfect scalability of the original applications — modeled
// here as memory-transaction contention that the vectorized code, issuing
// far fewer transactions, suffers less from.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "machine/Multicore.h"

using namespace slp;
using namespace slp::bench;

static const unsigned CoreCounts[] = {1, 2, 4, 6, 8, 10, 12};

static void printPanel(const char *Title, OptimizerKind Kind) {
  MachineModel M = MachineModel::intelDunnington();
  PipelineOptions Options;
  Options.Machine = M;

  std::printf("Figure 21(%s): NAS execution time reduction by core count "
              "(Intel machine)\n",
              Title);
  std::printf("%-6s", "cores:");
  for (unsigned C : CoreCounts)
    std::printf("%8u", C);
  std::printf("\n");

  std::vector<double> Avg(std::size(CoreCounts), 0.0);
  unsigned NasCount = 0;
  for (const Workload &W : standardWorkloads()) {
    if (!W.IsNas)
      continue;
    ++NasCount;
    PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
    std::printf("%-6s", W.Name.c_str());
    for (unsigned I = 0; I != std::size(CoreCounts); ++I) {
      double Red = 100.0 * multicoreTimeReduction(R.ScalarSim, R.VectorSim,
                                                  M, CoreCounts[I],
                                                  W.Multicore);
      Avg[I] += Red;
      std::printf("%7.2f%%", Red);
    }
    std::printf("\n");
  }
  std::printf("%-6s", "avg");
  for (unsigned I = 0; I != std::size(CoreCounts); ++I)
    std::printf("%7.2f%%", Avg[I] / NasCount);
  std::printf("\n\n");
}

int main(int argc, char **argv) {
  printPanel("a: Global", OptimizerKind::Global);
  printPanel("b: Global+Layout", OptimizerKind::GlobalLayout);
  std::printf("(paper: consistent improvements across core counts, "
              "slightly larger at higher counts)\n\n");
  registerOptimizerTimer("fig21/global/ft", "ft", OptimizerKind::Global,
                         MachineModel::intelDunnington());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
