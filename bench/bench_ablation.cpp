//===- bench/bench_ablation.cpp - Mechanism ablation study ------*- C++ -*-===//
//
// Quantifies each mechanism of the holistic framework by disabling it
// while keeping the rest intact (DESIGN.md's ablation item). For every
// variant the table reports the suite-average execution-time reduction of
// Global (Intel machine); the "full" row is the configuration used in all
// figure reproductions.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace slp;
using namespace slp::bench;

namespace {

struct Variant {
  const char *Name;
  HolisticAblation Ablation;
};

double suiteAverage(const HolisticAblation &Ablation) {
  PipelineOptions Options;
  Options.Ablation = Ablation;
  double Sum = 0;
  std::vector<Workload> Suite = standardWorkloads();
  for (const Workload &W : Suite)
    Sum += runPipeline(W.TheKernel, OptimizerKind::Global, Options)
               .improvement();
  return Sum / Suite.size();
}

void printAblation() {
  HolisticAblation Full;
  HolisticAblation NoReuseGrouping = Full;
  NoReuseGrouping.ReuseAwareGrouping = false;
  HolisticAblation NoTieBreak = Full;
  NoTieBreak.PackQualityTieBreak = false;
  HolisticAblation NoSched = Full;
  NoSched.ReuseAwareScheduling = false;
  HolisticAblation NoPermuted = Full;
  NoPermuted.PermutedReuse = false;
  HolisticAblation NoCache = Full;
  NoCache.CacheLoadedPacks = false;
  HolisticAblation NoPruning = Full;
  NoPruning.GroupPruning = false;

  const Variant Variants[] = {
      {"full framework", Full},
      {"- reuse-aware grouping", NoReuseGrouping},
      {"- packing tie-break", NoTieBreak},
      {"- reuse-aware scheduling", NoSched},
      {"- permuted (indirect) reuse", NoPermuted},
      {"- register-file pack cache", NoCache},
      {"- per-group cost pruning", NoPruning},
  };

  std::printf("Ablation: suite-average Global improvement with one "
              "mechanism disabled (Intel machine)\n");
  std::printf("%-30s %10s\n", "variant", "average");
  double FullAvg = 0;
  for (const Variant &V : Variants) {
    double Avg = suiteAverage(V.Ablation);
    if (&V == Variants)
      FullAvg = Avg;
    std::printf("%-30s %9.2f%%%s\n", V.Name, 100.0 * Avg,
                &V == Variants
                    ? ""
                    : (" (delta " +
                       std::to_string(100.0 * (Avg - FullAvg)).substr(0, 6) +
                       "pp)")
                          .c_str());
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  printAblation();
  registerOptimizerTimer("ablation/global/full/suite-milc", "milc",
                         OptimizerKind::Global,
                         MachineModel::intelDunnington());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
