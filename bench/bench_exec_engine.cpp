//===- bench/bench_exec_engine.cpp - Execution engine speedup ---*- C++ -*-===//
//
// Charts compile-once/run-many execution wall-clock for the flat-tape
// engine versus the retained tree-walking reference interpreters, over
// generated streaming loop kernels swept by statement count (64 → 512)
// and SIMD datapath width (128/256 bits), for both scalar kernels and the
// emitted vector programs. Before timing, both engines run once from
// identical environments and the results are compared — the speedup claim
// is only meaningful if execution is bit-identical. The three predicated
// workloads (memcpy_cond / dotprod_cond / mmm_cond) run the same protocol
// through if-conversion and the masked tape opcodes, so the masked
// execution path is timed and bit-identity-checked next to the
// straight-line sweep.
//
// The acceptance gate of the engine work lives here: the geomean speedup
// over kernels of >= 256 statements must be at least 5x, or the binary
// exits non-zero. Also registers google-benchmark entries
// (exec/<path>/<engine>/<size>[/<bits>]) so CI can track the numbers as
// JSON; bench/exec_engine_baseline.json holds the checked-in reference
// numbers the compile-time smoke job gates on.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecEngine.h"
#include "ir/Builder.h"
#include "layout/Layout.h"
#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace slp;

namespace {

// Iteration space of every generated kernel: a 2-deep nest, so the tape's
// odometer exercises carry propagation, with enough trips that per-run
// compile work amortizes away under both engines.
constexpr unsigned OuterTrip = 16;
constexpr unsigned InnerTrip = 8;

// Statements per isomorphism class (before unrolling) and classes
// sharing one operand pool. Kept tiny so the candidate set and reuse
// graph of the grouping stage stay linear in N — the point of this
// benchmark is execution cost, not grouping scalability.
constexpr unsigned ClassSize = 2;
constexpr unsigned BlockClasses = 4;

/// Generates a streaming kernel of \p N statements: every statement reads
/// the read-only pool arrays and writes a distinct per-class output array,
/// so repeated runs reproduce identical values (timed runs reuse one
/// environment) and class lanes form contiguous superwords. Each class
/// gets a globally unique expression shape (opcode pair x tail kind x tail
/// side x depth tier), so statements are isomorphic only within their
/// class. The subscripts mix both loop indices so strength reduction has
/// real affine work to kill.
Kernel makeStreamKernel(unsigned N) {
  unsigned NumClasses = N / ClassSize;
  int64_t Elems =
      static_cast<int64_t>(ClassSize) * OuterTrip * InnerTrip + ClassSize;

  KernelBuilder B("exec" + std::to_string(N));
  using ST = ScalarType;
  unsigned NumBlocks = (NumClasses + BlockClasses - 1) / BlockClasses;
  std::vector<std::array<SymbolId, 3>> Pools;
  for (unsigned Blk = 0; Blk != NumBlocks; ++Blk) {
    std::array<SymbolId, 3> Pool;
    for (unsigned P = 0; P != 3; ++P)
      Pool[P] = B.array("p" + std::to_string(Blk) + "_" + std::to_string(P),
                        ST::Float32, {Elems}, /*ReadOnly=*/true);
    Pools.push_back(Pool);
  }
  std::vector<SymbolId> Outs;
  for (unsigned C = 0; C != NumClasses; ++C)
    Outs.push_back(B.array("o" + std::to_string(C), ST::Float32, {Elems}));

  unsigned I = B.loop("i", 0, OuterTrip);
  unsigned J = B.loop("j", 0, InnerTrip);

  static const OpCode Ops[] = {OpCode::Add, OpCode::Sub, OpCode::Mul};
  for (unsigned S = 0; S != N; ++S) {
    unsigned C = S / ClassSize;
    unsigned L = S % ClassSize;
    unsigned ShapeId = C % 36;
    unsigned DepthTier = C / 36;
    OpCode Op1 = Ops[ShapeId % 3];
    OpCode Op2 = Ops[(ShapeId / 3) % 3];
    bool ConstTail = (ShapeId / 9) % 2;
    bool TailLeft = (ShapeId / 18) % 2;

    const std::array<SymbolId, 3> &Pool = Pools[C / BlockClasses];

    // Flattened lane-contiguous index: ClassSize * (InnerTrip*i + j) + L.
    AffineExpr Idx =
        B.idx(I, static_cast<int64_t>(ClassSize) * InnerTrip) +
        B.idx(J, ClassSize, L);
    ExprPtr Base = Expr::makeBinary(Op1, B.load(Pool[0], {Idx}),
                                    B.load(Pool[1], {Idx}));
    ExprPtr Tail = ConstTail ? B.c(0.75) : B.load(Pool[2], {Idx});
    ExprPtr Rhs = TailLeft
                      ? Expr::makeBinary(Op2, std::move(Tail),
                                         std::move(Base))
                      : Expr::makeBinary(Op2, std::move(Base),
                                         std::move(Tail));
    for (unsigned D = 0; D != DepthTier; ++D)
      Rhs = B.add(std::move(Rhs), B.load(Pool[2], {Idx}));
    B.assign(B.arrayRef(Outs[C], {Idx}), std::move(Rhs));
  }
  return B.take();
}

/// The candidate environment for vector execution (the equivalence
/// check's recipe): seeded from the source kernel, extended with unroll
/// clones and layout replicas of the final kernel.
Environment makeVectorEnv(const Kernel &Source, const PipelineResult &R,
                          uint64_t Seed) {
  Environment Env(Source, Seed);
  for (unsigned S = static_cast<unsigned>(Source.Scalars.size()),
                E = static_cast<unsigned>(R.Final.Scalars.size());
       S != E; ++S)
    Env.addScalarStorage(0);
  for (unsigned A = static_cast<unsigned>(Source.Arrays.size()),
                E = static_cast<unsigned>(R.Final.Arrays.size());
       A != E; ++A)
    Env.addArrayStorage(R.Final.Arrays[A].numElements());
  if (R.LayoutApplied)
    initializeReplicas(R.Final, R.Layout, Env);
  return Env;
}

/// One benchmark configuration, pipeline run once up front.
struct ExecConfig {
  unsigned N = 0;
  unsigned Bits = 0;
  Kernel K;
  PipelineResult R;
};

ExecConfig makeConfig(unsigned N, unsigned Bits) {
  ExecConfig C;
  C.N = N;
  C.Bits = Bits;
  C.K = makeStreamKernel(N);
  PipelineOptions Options;
  Options.Machine = MachineModel::hypothetical(Bits);
  // Schedule *quality* is irrelevant here (any valid vector program
  // exercises the engines identically); skip the reuse-aware scheduling
  // and per-group pruning so the one-time pipeline setup of the largest
  // configurations stays fast.
  Options.Ablation.ReuseAwareScheduling = false;
  Options.Ablation.GroupPruning = false;
  C.R = runPipeline(C.K, OptimizerKind::Global, Options);
  if (!C.R.TransformationApplied) {
    std::fprintf(stderr,
                 "FATAL: %u-statement kernel was not vectorized at %u "
                 "bits — the vector timing would be meaningless\n",
                 N, Bits);
    std::exit(1);
  }
  return C;
}

void assertEnginesAgree(const Kernel &K, const PipelineResult &R,
                        const std::string &What) {
  ExecEngine Opt(ExecEngineKind::Optimized);
  ExecEngine Ref(ExecEngineKind::Reference);
  Environment OptEnv(K, 1);
  Environment RefEnv(K, 1);
  ScalarExecStats OS = Opt.runKernel(K, OptEnv);
  ScalarExecStats RS = Ref.runKernel(K, RefEnv);
  if (!OptEnv.matches(RefEnv, static_cast<unsigned>(K.Scalars.size()),
                      static_cast<unsigned>(K.Arrays.size())) ||
      OS.AluOps != RS.AluOps || OS.ArrayLoads != RS.ArrayLoads ||
      OS.ArrayStores != RS.ArrayStores) {
    std::fprintf(stderr,
                 "FATAL: engines disagree on scalar execution of %s\n",
                 What.c_str());
    std::exit(1);
  }
  Environment OptVec = makeVectorEnv(K, R, 1);
  Environment RefVec = makeVectorEnv(K, R, 1);
  Opt.runProgram(R.Final, R.Program, OptVec);
  Ref.runProgram(R.Final, R.Program, RefVec);
  if (!OptVec.matches(RefVec, static_cast<unsigned>(R.Final.Scalars.size()),
                      static_cast<unsigned>(R.Final.Arrays.size()))) {
    std::fprintf(stderr,
                 "FATAL: engines disagree on vector execution of %s\n",
                 What.c_str());
    std::exit(1);
  }
}

void assertBitIdentity(const ExecConfig &C) {
  assertEnginesAgree(C.K, C.R,
                     "the " + std::to_string(C.N) + "-statement kernel at " +
                         std::to_string(C.Bits) + " bits");
}

unsigned repsFor(unsigned N) { return N <= 64 ? 60 : (N <= 256 ? 15 : 4); }

/// Times compile-once/run-many scalar execution under \p Kind.
double timeScalar(const Kernel &K, ExecEngineKind Kind, unsigned Reps) {
  ExecEngine Engine(Kind);
  CompiledScalarKernel Compiled = Engine.compileScalar(K);
  Environment Env(K, 1);
  uint64_t Sink = 0;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Sink += Engine.runScalar(Compiled, Env).AluOps;
  auto End = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Sink);
  return std::chrono::duration<double>(End - Start).count() / Reps;
}

/// Times compile-once/run-many vector-program execution under \p Kind.
double timeVector(const Kernel &K, const PipelineResult &R,
                  ExecEngineKind Kind, unsigned Reps) {
  ExecEngine Engine(Kind);
  CompiledVectorKernel Compiled = Engine.compileVector(R.Final, R.Program);
  Environment Env = makeVectorEnv(K, R, 1);
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Engine.runVector(Compiled, Env);
  auto End = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Env.scalarData());
  return std::chrono::duration<double>(End - Start).count() / Reps;
}

/// One predicated (branchy) workload, pipeline run once up front: the
/// kernel goes through if-conversion and executes through the masked tape
/// opcodes, so masked loads/stores and suppressed guarded stores get
/// wall-clock coverage next to the straight-line sweep.
struct PredConfig {
  std::string Name;
  Kernel K;
  PipelineResult R;
};

std::vector<PredConfig> makePredConfigs() {
  std::vector<PredConfig> Out;
  std::vector<Workload> Pool = predicatedWorkloads();
  for (Workload &W : Pool) {
    PredConfig C;
    C.Name = W.Name;
    C.K = std::move(W.TheKernel);
    PipelineOptions Options;
    Options.Machine = MachineModel::hypothetical(128);
    C.R = runPipeline(C.K, OptimizerKind::Global, Options);
    if (!C.R.TransformationApplied) {
      std::fprintf(stderr,
                   "FATAL: predicated workload '%s' was not vectorized — "
                   "the masked timing would be meaningless\n",
                   C.Name.c_str());
      std::exit(1);
    }
    Out.push_back(std::move(C));
  }
  return Out;
}

/// Prints the predicated-workload table. No speedup gate here: the point
/// is coverage and trend-tracking of the masked execution path, and the
/// CI baseline (bench/exec_engine_baseline.json) gates absolute wall-clock
/// on the registered benchmark entries instead.
void printPredicatedSweep(const std::vector<PredConfig> &Configs) {
  std::printf("Predicated workloads (if-converted, masked vector "
              "execution; bit-identity asserted per workload)\n");
  std::printf("%14s %13s %13s %8s %13s %13s %8s\n", "workload",
              "scal-ref(ms)", "scal-opt(ms)", "speedup", "vec-ref(ms)",
              "vec-opt(ms)", "speedup");
  for (const PredConfig &C : Configs) {
    assertEnginesAgree(C.K, C.R, "predicated workload '" + C.Name + "'");
    constexpr unsigned Reps = 15;
    double ScalRef = timeScalar(C.K, ExecEngineKind::Reference, Reps);
    double ScalOpt = timeScalar(C.K, ExecEngineKind::Optimized, Reps);
    double VecRef = timeVector(C.K, C.R, ExecEngineKind::Reference, Reps);
    double VecOpt = timeVector(C.K, C.R, ExecEngineKind::Optimized, Reps);
    std::printf("%14s %13.3f %13.3f %7.1fx %13.3f %13.3f %7.1fx\n",
                C.Name.c_str(), 1e3 * ScalRef, 1e3 * ScalOpt,
                ScalRef / ScalOpt, 1e3 * VecRef, 1e3 * VecOpt,
                VecRef / VecOpt);
  }
  std::printf("\n");
}

void registerPredBench(const PredConfig *C, ExecEngineKind Kind) {
  std::string Scalar = std::string("exec/pred/") + C->Name + "/scalar/" +
                       execEngineName(Kind);
  benchmark::RegisterBenchmark(
      Scalar.c_str(), [C, Kind](benchmark::State &S) {
        ExecEngine Engine(Kind);
        CompiledScalarKernel Compiled = Engine.compileScalar(C->K);
        Environment Env(C->K, 1);
        for (auto _ : S) {
          ScalarExecStats Stats = Engine.runScalar(Compiled, Env);
          benchmark::DoNotOptimize(Stats.AluOps);
        }
      });
  std::string Vector = std::string("exec/pred/") + C->Name + "/vector/" +
                       execEngineName(Kind);
  benchmark::RegisterBenchmark(
      Vector.c_str(), [C, Kind](benchmark::State &S) {
        ExecEngine Engine(Kind);
        CompiledVectorKernel Compiled =
            Engine.compileVector(C->R.Final, C->R.Program);
        Environment Env = makeVectorEnv(C->K, C->R, 1);
        for (auto _ : S) {
          Engine.runVector(Compiled, Env);
          benchmark::DoNotOptimize(Env.scalarData());
        }
      });
}

/// Prints the sweep table and enforces the >= 5x geomean gate over
/// kernels of >= 256 statements.
void printSweepAndGate(const std::vector<ExecConfig> &Configs) {
  std::printf("Execution wall-clock per run: flat-tape engine vs "
              "tree-walking reference (bit-identity asserted per "
              "configuration)\n");
  std::printf("%6s %5s %13s %13s %8s %13s %13s %8s\n", "stmts", "bits",
              "scal-ref(ms)", "scal-opt(ms)", "speedup", "vec-ref(ms)",
              "vec-opt(ms)", "speedup");
  double LogSum = 0;
  unsigned LogCount = 0;
  for (const ExecConfig &C : Configs) {
    assertBitIdentity(C);
    unsigned Reps = repsFor(C.N);
    double ScalRef = timeScalar(C.K, ExecEngineKind::Reference, Reps);
    double ScalOpt = timeScalar(C.K, ExecEngineKind::Optimized, Reps);
    double VecRef = timeVector(C.K, C.R, ExecEngineKind::Reference, Reps);
    double VecOpt = timeVector(C.K, C.R, ExecEngineKind::Optimized, Reps);
    double ScalSpeedup = ScalRef / ScalOpt;
    double VecSpeedup = VecRef / VecOpt;
    std::printf("%6u %5u %13.3f %13.3f %7.1fx %13.3f %13.3f %7.1fx\n",
                C.N, C.Bits, 1e3 * ScalRef, 1e3 * ScalOpt, ScalSpeedup,
                1e3 * VecRef, 1e3 * VecOpt, VecSpeedup);
    if (C.N >= 256) {
      LogSum += std::log(ScalSpeedup) + std::log(VecSpeedup);
      LogCount += 2;
    }
  }
  double Geomean = std::exp(LogSum / LogCount);
  std::printf("\ngeomean speedup (kernels >= 256 statements): %.1fx "
              "(gate: >= 5x)\n\n",
              Geomean);
  if (Geomean < 5.0) {
    std::fprintf(stderr,
                 "FATAL: geomean speedup %.2fx is below the 5x "
                 "acceptance gate\n",
                 Geomean);
    std::exit(1);
  }
}

void registerExecBench(const ExecConfig *C, ExecEngineKind Kind) {
  std::string Scalar = std::string("exec/scalar/") + execEngineName(Kind) +
                       "/" + std::to_string(C->N);
  // Scalar execution is datapath-independent; register it once.
  if (C->Bits == 128)
    benchmark::RegisterBenchmark(
        Scalar.c_str(), [C, Kind](benchmark::State &S) {
          ExecEngine Engine(Kind);
          CompiledScalarKernel Compiled = Engine.compileScalar(C->K);
          Environment Env(C->K, 1);
          for (auto _ : S) {
            ScalarExecStats Stats = Engine.runScalar(Compiled, Env);
            benchmark::DoNotOptimize(Stats.AluOps);
          }
        });
  std::string Vector = std::string("exec/vector/") + execEngineName(Kind) +
                       "/" + std::to_string(C->N) + "/" +
                       std::to_string(C->Bits);
  benchmark::RegisterBenchmark(
      Vector.c_str(), [C, Kind](benchmark::State &S) {
        ExecEngine Engine(Kind);
        CompiledVectorKernel Compiled =
            Engine.compileVector(C->R.Final, C->R.Program);
        Environment Env = makeVectorEnv(C->K, C->R, 1);
        for (auto _ : S) {
          Engine.runVector(Compiled, Env);
          benchmark::DoNotOptimize(Env.scalarData());
        }
      });
}

} // namespace

int main(int argc, char **argv) {
  std::vector<ExecConfig> Configs;
  for (unsigned N : {64u, 256u, 512u})
    for (unsigned Bits : {128u, 256u})
      Configs.push_back(makeConfig(N, Bits));
  std::vector<PredConfig> PredConfigs = makePredConfigs();

  printSweepAndGate(Configs);
  printPredicatedSweep(PredConfigs);

  for (const ExecConfig &C : Configs)
    for (ExecEngineKind Kind :
         {ExecEngineKind::Optimized, ExecEngineKind::Reference})
      registerExecBench(&C, Kind);
  for (const PredConfig &C : PredConfigs)
    for (ExecEngineKind Kind :
         {ExecEngineKind::Optimized, ExecEngineKind::Reference})
      registerPredBench(&C, Kind);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
