//===- bench/bench_fig18.cpp - Figure 18 reproduction -----------*- C++ -*-===//
//
// Figure 18 of the paper: the percentage of dynamic instructions of the
// scalar code that Global eliminates, for hypothetical SIMD datapath
// widths of 128 through 1024 bits (paper: ~49.1% at 128 bits rising to
// ~54.5% at 1024 bits). Wider datapaths let the iterative grouping of
// Section 4.2.2 widen superword statements further.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace slp;
using namespace slp::bench;

static double eliminationAt(unsigned Bits) {
  PipelineOptions Options;
  Options.Machine = MachineModel::hypothetical(Bits);
  double Sum = 0;
  std::vector<Workload> Suite = standardWorkloads();
  for (const Workload &W : Suite) {
    PipelineResult R =
        runPipeline(W.TheKernel, OptimizerKind::Global, Options);
    Sum += 1.0 - static_cast<double>(R.VectorSim.totalInstrs()) /
                     static_cast<double>(R.ScalarSim.totalInstrs());
  }
  return Sum / Suite.size();
}

static void printFigure18() {
  std::printf("Figure 18: dynamic instructions eliminated by Global over "
              "scalar code,\nfor hypothetical datapath widths "
              "(suite average)\n");
  std::printf("%10s %12s\n", "datapath", "eliminated");
  for (unsigned Bits : {128u, 256u, 512u, 1024u})
    std::printf("%7u-bit %11.2f%%\n", Bits, 100.0 * eliminationAt(Bits));
  std::printf("(paper: ~49.1%% at 128 bits, ~54.5%% at 1024 bits)\n\n");
}

int main(int argc, char **argv) {
  printFigure18();
  for (unsigned Bits : {128u, 1024u}) {
    std::string Label = "fig18/global/" + std::to_string(Bits) + "bit/ft";
    benchmark::RegisterBenchmark(
        Label.c_str(), [Bits](benchmark::State &S) {
          Workload W = workloadByName("ft");
          PipelineOptions Options;
          Options.Machine = MachineModel::hypothetical(Bits);
          for (auto _ : S) {
            PipelineResult R =
                runPipeline(W.TheKernel, OptimizerKind::Global, Options);
            benchmark::DoNotOptimize(R.Program.Insts.data());
          }
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
