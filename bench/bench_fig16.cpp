//===- bench/bench_fig16.cpp - Figure 16 reproduction -----------*- C++ -*-===//
//
// Figure 16 of the paper: execution-time reductions of Native, SLP, and
// Global over the scalar code, per benchmark, on the Intel Dunnington
// machine (Table 1). Benchmarks are ordered by the Global improvement as
// in the paper. The table prints before the google-benchmark timings; the
// benchmark entries themselves measure the optimizer's compile time on
// each kernel.
//
//===----------------------------------------------------------------------===//

#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

using namespace slp;

namespace {

struct Row {
  std::string Name;
  double Native, Slp, Global;
};

void printFigure16() {
  MachineModel M = MachineModel::intelDunnington();
  std::printf("Machine (Table 1): %s\n", M.Name.c_str());
  std::printf("  L1D %uKB/core, L2 %uKB, L3 %uKB, %u-bit SIMD, %u cores\n\n",
              M.L1DataKB, M.L2TotalKB, M.L3TotalKB, M.DatapathBits,
              M.NumCores);

  PipelineOptions Options;
  Options.Machine = M;

  std::vector<Row> Rows;
  unsigned GlobalEqSlp = 0, SlpEqNative = 0;
  for (const Workload &W : standardWorkloads()) {
    Row R;
    R.Name = W.Name;
    R.Native = 100.0 * runPipeline(W.TheKernel, OptimizerKind::Native,
                                   Options)
                           .improvement();
    R.Slp = 100.0 * runPipeline(W.TheKernel, OptimizerKind::LarsenSlp,
                                Options)
                        .improvement();
    R.Global = 100.0 *
               runPipeline(W.TheKernel, OptimizerKind::Global, Options)
                   .improvement();
    if (std::abs(R.Global - R.Slp) < 0.05)
      ++GlobalEqSlp;
    if (std::abs(R.Slp - R.Native) < 0.05)
      ++SlpEqNative;
    Rows.push_back(R);
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.Global < B.Global; });

  std::printf("Figure 16: execution time reduction over scalar code "
              "(Intel machine)\n");
  std::printf("%-11s %8s %8s %8s\n", "benchmark", "Native", "SLP", "Global");
  double Sum[3] = {0, 0, 0};
  for (const Row &R : Rows) {
    std::printf("%-11s %7.2f%% %7.2f%% %7.2f%%\n", R.Name.c_str(), R.Native,
                R.Slp, R.Global);
    Sum[0] += R.Native;
    Sum[1] += R.Slp;
    Sum[2] += R.Global;
  }
  std::printf("%-11s %7.2f%% %7.2f%% %7.2f%%\n", "average",
              Sum[0] / Rows.size(), Sum[1] / Rows.size(),
              Sum[2] / Rows.size());
  std::printf("\nGlobal == SLP on %u benchmark(s) (paper: 3); "
              "SLP == Native on %u (paper: 4)\n\n",
              GlobalEqSlp, SlpEqNative);
}

/// google-benchmark entries timing the optimizers themselves.
void BM_OptimizeKernel(benchmark::State &State, OptimizerKind Kind,
                       const std::string &Name) {
  Workload W = workloadByName(Name);
  PipelineOptions Options;
  for (auto _ : State) {
    PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
    benchmark::DoNotOptimize(R.Program.Insts.data());
  }
}

} // namespace

int main(int argc, char **argv) {
  printFigure16();
  for (const char *Name : {"milc", "ft", "gromacs"}) {
    benchmark::RegisterBenchmark(
        (std::string("fig16/global/") + Name).c_str(),
        [Name](benchmark::State &S) {
          BM_OptimizeKernel(S, OptimizerKind::Global, Name);
        });
    benchmark::RegisterBenchmark(
        (std::string("fig16/slp/") + Name).c_str(),
        [Name](benchmark::State &S) {
          BM_OptimizeKernel(S, OptimizerKind::LarsenSlp, Name);
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
