//===- bench/BenchCommon.h - Shared helpers for figure benches --*- C++ -*-===//
///
/// \file
/// Helpers shared by the per-figure reproduction benches: running all four
/// schemes over a workload and formatting rows.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_BENCH_BENCHCOMMON_H
#define SLP_BENCH_BENCHCOMMON_H

#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace slp {
namespace bench {

/// Results of every scheme on one workload.
struct SchemeResults {
  std::string Name;
  PipelineResult Native;
  PipelineResult Slp;
  PipelineResult Global;
  PipelineResult GlobalLayout;
};

inline SchemeResults runAllSchemes(const Workload &W,
                                   const MachineModel &Machine) {
  PipelineOptions Options;
  Options.Machine = Machine;
  SchemeResults R;
  R.Name = W.Name;
  R.Native = runPipeline(W.TheKernel, OptimizerKind::Native, Options);
  R.Slp = runPipeline(W.TheKernel, OptimizerKind::LarsenSlp, Options);
  R.Global = runPipeline(W.TheKernel, OptimizerKind::Global, Options);
  R.GlobalLayout =
      runPipeline(W.TheKernel, OptimizerKind::GlobalLayout, Options);
  return R;
}

/// Registers a google-benchmark timer for one optimizer over one workload
/// (used so each figure binary also produces timing entries). Besides the
/// end-to-end time, the per-pass wall clock measured by the pass manager
/// is exported as `pass_<name>` counters (seconds per iteration), so the
/// BENCH_*.json output tracks compile time per stage, not just in total.
inline void registerOptimizerTimer(const std::string &Label,
                                   const std::string &WorkloadName,
                                   OptimizerKind Kind,
                                   const MachineModel &Machine) {
  benchmark::RegisterBenchmark(Label.c_str(), [WorkloadName, Kind,
                                               Machine](benchmark::State &S) {
    Workload W = workloadByName(WorkloadName);
    PipelineOptions Options;
    Options.Machine = Machine;
    TimingReport PassTimings;
    for (auto _ : S) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
      benchmark::DoNotOptimize(R.Program.Insts.data());
      PassTimings.merge(R.PassTimings);
    }
    for (const TimingEntry &E : PassTimings.entries())
      S.counters["pass_" + E.Name] =
          benchmark::Counter(E.Seconds, benchmark::Counter::kAvgIterations);
  });
}

} // namespace bench
} // namespace slp

#endif // SLP_BENCH_BENCHCOMMON_H
