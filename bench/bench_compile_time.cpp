//===- bench/bench_compile_time.cpp - Compilation overhead ------*- C++ -*-===//
//
// Section 7.1 of the paper reports that the holistic framework increases
// compilation time by about 27% on average relative to the SLP baseline.
// This bench times both optimizers (grouping + scheduling + codegen, no
// simulation) over every workload and prints the measured overhead, plus
// google-benchmark entries per benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/Dependence.h"
#include "slp/Baseline.h"
#include "slp/Grouping.h"
#include "transform/Unroll.h"

#include <chrono>

using namespace slp;
using namespace slp::bench;

namespace {

/// One optimizer pass (no simulation), returning the schedule size so the
/// work cannot be optimized away.
unsigned runOptimizerOnce(const Kernel &Unrolled, const DependenceInfo &Deps,
                          bool Holistic) {
  if (!Holistic)
    return larsenSlpSchedule(Unrolled, Deps, 128).numGroups();
  GroupingOptions GO;
  GroupingResult Groups = groupStatementsGlobal(Unrolled, Deps, GO);
  return scheduleGroups(Unrolled, Deps, Groups).numGroups();
}

double timeOptimizer(const Kernel &Unrolled, const DependenceInfo &Deps,
                     bool Holistic, unsigned Reps) {
  auto Start = std::chrono::steady_clock::now();
  unsigned Sink = 0;
  for (unsigned I = 0; I != Reps; ++I)
    Sink += runOptimizerOnce(Unrolled, Deps, Holistic);
  auto End = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Sink);
  return std::chrono::duration<double>(End - Start).count();
}

void printOverheadTable() {
  std::printf("Compilation time: Global vs SLP optimizer "
              "(paper: +27%% on average)\n");
  std::printf("%-11s %12s %12s %10s\n", "benchmark", "SLP (ms)",
              "Global (ms)", "overhead");
  double SumRatio = 0;
  unsigned Rows = 0;
  for (const Workload &W : standardWorkloads()) {
    Kernel Unrolled = unrollInnermost(
        W.TheKernel, chooseUnrollFactor(W.TheKernel, 4));
    DependenceInfo Deps(Unrolled);
    const unsigned Reps = 20;
    double SlpSec = timeOptimizer(Unrolled, Deps, /*Holistic=*/false, Reps);
    double GlobalSec = timeOptimizer(Unrolled, Deps, /*Holistic=*/true,
                                     Reps);
    double Ratio = GlobalSec / SlpSec - 1.0;
    SumRatio += Ratio;
    ++Rows;
    std::printf("%-11s %12.3f %12.3f %+9.1f%%\n", W.Name.c_str(),
                1e3 * SlpSec / Reps, 1e3 * GlobalSec / Reps, 100.0 * Ratio);
  }
  std::printf("%-11s %25s %+10.1f%%\n\n", "average", "",
              100.0 * SumRatio / Rows);
}

} // namespace

int main(int argc, char **argv) {
  printOverheadTable();
  for (const char *Name : {"milc", "gromacs", "ft"}) {
    for (bool Holistic : {false, true}) {
      std::string Label = std::string("compile/") +
                          (Holistic ? "global/" : "slp/") + Name;
      benchmark::RegisterBenchmark(
          Label.c_str(), [Name, Holistic](benchmark::State &S) {
            Workload W = workloadByName(Name);
            Kernel Unrolled = unrollInnermost(
                W.TheKernel, chooseUnrollFactor(W.TheKernel, 4));
            DependenceInfo Deps(Unrolled);
            for (auto _ : S)
              benchmark::DoNotOptimize(
                  runOptimizerOnce(Unrolled, Deps, Holistic));
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
