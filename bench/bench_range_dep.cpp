//===- bench/bench_range_dep.cpp - Range-sharpened dependence table -------===//
//
// Quantifies the range-sharpened dependence tier (analysis/Dependence.h,
// docs/kernel-analysis.md): for every workload where the exact
// `affineFeasibleZero` test or the guard-disjointness analysis refutes at
// least one base-tier may-alias answer, the table compares the blunt
// (GCD + Banerjee only) and sharpened dependence graphs and the resulting
// Global-scheme improvement on the Intel machine.
//
// Each sharpening workload is also registered as a benchmark entry
// `range-dep/<name>` whose counters (`range_disproved`, `guard_disjoint`,
// `deps_removed`, `improvement_delta_pp`) feed the CI regression gate via
// check_bench_regression.py --counter ... --min-ratio (baseline:
// bench/range_dep_baseline.json). A sharpening fix that stops refuting
// those pairs fails the gate instead of silently regressing to the blunt
// tier.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/Dependence.h"

using namespace slp;
using namespace slp::bench;

namespace {

struct RangeRow {
  std::string Name;
  unsigned DepsBlunt = 0;
  unsigned DepsSharp = 0;
  unsigned RangeDisproved = 0;
  unsigned GuardDisjoint = 0;
  double ImprovementBlunt = 0;
  double ImprovementSharp = 0;
};

RangeRow measure(const Workload &W) {
  RangeRow Row;
  Row.Name = W.Name;
  DependenceInfo Blunt(W.TheKernel, /*SharpenWithRanges=*/false);
  DependenceInfo Sharp(W.TheKernel, /*SharpenWithRanges=*/true);
  Row.DepsBlunt = static_cast<unsigned>(Blunt.dependences().size());
  Row.DepsSharp = static_cast<unsigned>(Sharp.dependences().size());
  Row.RangeDisproved = Sharp.rangeDisprovedCount();
  Row.GuardDisjoint = Sharp.guardDisjointCount();

  PipelineOptions Options;
  Options.Machine = MachineModel::intelDunnington();
  Options.RangeSharpenDeps = false;
  Row.ImprovementBlunt =
      runPipeline(W.TheKernel, OptimizerKind::Global, Options).improvement();
  Options.RangeSharpenDeps = true;
  Row.ImprovementSharp =
      runPipeline(W.TheKernel, OptimizerKind::Global, Options).improvement();
  return Row;
}

std::vector<Workload> allWorkloads() {
  std::vector<Workload> Suite = standardWorkloads();
  for (Workload &W : predicatedWorkloads())
    Suite.push_back(std::move(W));
  for (Workload &W : rangeWorkloads())
    Suite.push_back(std::move(W));
  return Suite;
}

void printTable() {
  std::printf("Range-sharpened dependence tier: blunt (GCD+Banerjee) vs "
              "sharpened graphs, Global improvement (Intel machine)\n");
  std::printf("%-18s %6s %6s %9s %9s %8s %8s %8s\n", "workload", "blunt",
              "sharp", "disproved", "disjoint", "blunt%", "sharp%",
              "delta-pp");
  for (const Workload &W : allWorkloads()) {
    RangeRow Row = measure(W);
    if (Row.RangeDisproved == 0 && Row.GuardDisjoint == 0)
      continue; // the sharpened tier is a no-op on this workload
    std::printf("%-18s %6u %6u %9u %9u %7.2f%% %7.2f%% %+7.2f\n",
                Row.Name.c_str(), Row.DepsBlunt, Row.DepsSharp,
                Row.RangeDisproved, Row.GuardDisjoint,
                100.0 * Row.ImprovementBlunt, 100.0 * Row.ImprovementSharp,
                100.0 * (Row.ImprovementSharp - Row.ImprovementBlunt));
  }
  std::printf("\n");
}

void registerRangeBenches() {
  for (const Workload &W : allWorkloads()) {
    RangeRow Probe = measure(W);
    if (Probe.RangeDisproved == 0 && Probe.GuardDisjoint == 0)
      continue;
    std::string Label = "range-dep/" + W.Name;
    std::string Name = W.Name;
    benchmark::RegisterBenchmark(
        Label.c_str(), [Name](benchmark::State &S) {
          Workload W = workloadByName(Name);
          RangeRow Row;
          for (auto _ : S) {
            Row = measure(W);
            benchmark::DoNotOptimize(Row.DepsSharp);
          }
          S.counters["range_disproved"] = Row.RangeDisproved;
          S.counters["guard_disjoint"] = Row.GuardDisjoint;
          S.counters["deps_removed"] =
              static_cast<double>(Row.DepsBlunt - Row.DepsSharp);
          S.counters["improvement_delta_pp"] =
              100.0 * (Row.ImprovementSharp - Row.ImprovementBlunt);
        });
  }
}

} // namespace

int main(int argc, char **argv) {
  printTable();
  registerRangeBenches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
