//===- bench/bench_fig20.cpp - Figure 20 reproduction -----------*- C++ -*-===//
//
// Figure 20 of the paper: Global and Global+Layout execution-time
// reductions over scalar code on the AMD Phenom II machine (Table 2).
// The paper reports averages of 10.8% and 14.1% (vs 12% and 14.9% on the
// Intel machine), the difference stemming mainly from the AMD box's
// higher packing/unpacking costs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace slp;
using namespace slp::bench;

static void printFigure20() {
  MachineModel M = MachineModel::amdPhenomII();
  std::printf("Machine (Table 2): %s\n", M.Name.c_str());
  std::printf("  L1D %uKB/core, L2 %uKB/core, L3 %uKB, %u-bit SIMD, "
              "%u cores\n\n",
              M.L1DataKB, M.L2TotalKB, M.L3TotalKB, M.DatapathBits,
              M.NumCores);

  std::printf("Figure 20: execution time reduction over scalar code "
              "(AMD machine)\n");
  std::printf("%-11s %8s %14s\n", "benchmark", "Global", "Global+Layout");
  double SumG = 0, SumL = 0;
  std::vector<Workload> Suite = standardWorkloads();
  for (const Workload &W : Suite) {
    SchemeResults R = runAllSchemes(W, M);
    double G = 100.0 * R.Global.improvement();
    double L = 100.0 * R.GlobalLayout.improvement();
    SumG += G;
    SumL += L;
    std::printf("%-11s %7.2f%% %13.2f%%\n", W.Name.c_str(), G, L);
  }
  std::printf("%-11s %7.2f%% %13.2f%%\n", "average", SumG / Suite.size(),
              SumL / Suite.size());
  std::printf("(paper: 10.8%% and 14.1%% on AMD, vs 12%% and 14.9%% on "
              "Intel)\n\n");
}

int main(int argc, char **argv) {
  printFigure20();
  registerOptimizerTimer("fig20/global/gromacs", "gromacs",
                         OptimizerKind::Global, MachineModel::amdPhenomII());
  registerOptimizerTimer("fig20/global+layout/gromacs", "gromacs",
                         OptimizerKind::GlobalLayout,
                         MachineModel::amdPhenomII());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
