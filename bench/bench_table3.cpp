//===- bench/bench_table3.cpp - Table 3 reproduction ------------*- C++ -*-===//
//
// Table 3 of the paper: the benchmark suite — all C/C++ floating-point
// SPEC2006 benchmarks plus six NAS parallel benchmarks. For each synthetic
// stand-in kernel we also print its structural statistics (statements
// before/after unrolling, arrays, scalars) so the mapping from benchmark
// to kernel is auditable.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/Isomorphism.h"
#include "transform/Unroll.h"

using namespace slp;
using namespace slp::bench;

static void printTable3() {
  std::printf("Table 3: benchmark description\n");
  std::printf("%-6s %-11s %-55s %6s %6s %7s %8s\n", "suite", "benchmark",
              "description", "stmts", "arrays", "scalars", "unrolled");
  for (const Workload &W : standardWorkloads()) {
    unsigned Factor = chooseUnrollFactor(
        W.TheKernel,
        lanesFor(W.TheKernel.Body.empty()
                     ? ScalarType::Float32
                     : statementElementType(W.TheKernel,
                                            W.TheKernel.Body.statement(0)),
                 128));
    Kernel U = unrollInnermost(W.TheKernel, Factor);
    std::printf("%-6s %-11s %-55s %6u %6zu %7zu %8u\n",
                W.IsNas ? "NAS" : "SPEC", W.Name.c_str(),
                W.Description.c_str(), W.TheKernel.Body.size(),
                W.TheKernel.Arrays.size(), W.TheKernel.Scalars.size(),
                U.Body.size());
  }
  std::printf("\n");
}

int main(int argc, char **argv) {
  printTable3();
  benchmark::RegisterBenchmark("table3/generate_suite",
                               [](benchmark::State &S) {
                                 for (auto _ : S) {
                                   auto All = standardWorkloads();
                                   benchmark::DoNotOptimize(All.data());
                                 }
                               });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
