//===- bench/bench_native.cpp - Measured native SIMD speedup ----*- C++ -*-===//
//
// The ground-truth counterpart of the simulator's predicted speedups: every
// standard workload (the paper's 16 benchmark kernels) and every predicated
// workload is lowered to portable C by the native backend, compiled with
// the host compiler, and timed compile-once/run-many — the scalar baseline
// (host auto-vectorization disabled) against the emitted vector program
// (GCC/Clang vector extensions). The table prints the measured wall-clock
// speedup next to the cost model's predicted speedup (ScalarSim cycles /
// VectorSim cycles) so the model's fidelity is inspectable per workload.
//
// Before timing, the native engine must reproduce the flat-tape engine
// bit-for-bit on each workload (scalar and vector) — a measured speedup is
// only meaningful if the machine code computes the same values. When no
// host compiler is available the binary prints an explicit skip line and
// exits 0, so the bench suite stays green on bare containers.
//
// Also registers google-benchmark entries (native/scalar/<workload>,
// native/vector/<workload>) whose vector entries carry measured_speedup /
// predicted_speedup counters; bench/native_baseline.json pins the measured
// speedups and CI gates them with
//   tools/check_bench_regression.py --counter measured_speedup --min-ratio
// so a lowering regression that halves a real speedup fails the build.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecEngine.h"
#include "layout/Layout.h"
#include "native/NativeBackend.h"
#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace slp;

namespace {

/// The candidate environment for vector execution (the equivalence
/// check's recipe): seeded from the source kernel, extended with unroll
/// clones and layout replicas of the final kernel.
Environment makeVectorEnv(const Kernel &Source, const PipelineResult &R,
                          uint64_t Seed) {
  Environment Env(Source, Seed);
  for (unsigned S = static_cast<unsigned>(Source.Scalars.size()),
                E = static_cast<unsigned>(R.Final.Scalars.size());
       S != E; ++S)
    Env.addScalarStorage(0);
  for (unsigned A = static_cast<unsigned>(Source.Arrays.size()),
                E = static_cast<unsigned>(R.Final.Arrays.size());
       A != E; ++A)
    Env.addArrayStorage(R.Final.Arrays[A].numElements());
  if (R.LayoutApplied)
    initializeReplicas(R.Final, R.Layout, Env);
  return Env;
}

/// One workload, pipeline run once up front. The cost model guard is off:
/// this benchmark exists to measure what the transformation actually does
/// to wall-clock, including on workloads the model would decline.
struct NativeConfig {
  std::string Name;
  bool Predicated = false;
  Kernel K;
  PipelineResult R;
  double Predicted = 0;  ///< ScalarSim cycles / VectorSim cycles
  double Measured = 0;   ///< scalar-native ms / vector-native ms
};

std::vector<NativeConfig> makeConfigs() {
  std::vector<NativeConfig> Out;
  auto Add = [&](Workload &W, bool Predicated) {
    NativeConfig C;
    C.Name = W.Name;
    C.Predicated = Predicated;
    C.K = std::move(W.TheKernel);
    PipelineOptions Options;
    Options.Machine = MachineModel::intelDunnington();
    Options.CostModelGuard = false;
    C.R = runPipeline(C.K, OptimizerKind::Global, Options);
    if (C.R.VectorSim.Cycles > 0)
      C.Predicted = C.R.ScalarSim.Cycles / C.R.VectorSim.Cycles;
    Out.push_back(std::move(C));
  };
  std::vector<Workload> Standard = standardWorkloads();
  for (Workload &W : Standard)
    Add(W, /*Predicated=*/false);
  std::vector<Workload> Pred = predicatedWorkloads();
  for (Workload &W : Pred)
    Add(W, /*Predicated=*/true);
  return Out;
}

/// Demands bit-identical scalar and vector execution between the native
/// engine and the flat-tape engine, and that the native lowering did not
/// silently fall back to the tape (a fallback would time the wrong thing).
void assertNativeBitIdentity(const NativeConfig &C) {
  ExecEngine Tape(ExecEngineKind::Optimized);
  ExecEngine Native(ExecEngineKind::Native);

  Environment TapeEnv(C.K, 1);
  Environment NativeEnv(C.K, 1);
  ScalarExecStats TS = Tape.runKernel(C.K, TapeEnv);
  ScalarExecStats NS = Native.runKernel(C.K, NativeEnv);
  if (!NativeEnv.matches(TapeEnv,
                         static_cast<unsigned>(C.K.Scalars.size()),
                         static_cast<unsigned>(C.K.Arrays.size())) ||
      TS.AluOps != NS.AluOps || TS.ArrayLoads != NS.ArrayLoads ||
      TS.ArrayStores != NS.ArrayStores) {
    std::fprintf(stderr,
                 "FATAL: native engine diverged on scalar execution of "
                 "'%s'\n",
                 C.Name.c_str());
    std::exit(1);
  }

  if (C.R.TransformationApplied) {
    Environment TapeVec = makeVectorEnv(C.K, C.R, 1);
    Environment NativeVec = makeVectorEnv(C.K, C.R, 1);
    Tape.runProgram(C.R.Final, C.R.Program, TapeVec);
    Native.runProgram(C.R.Final, C.R.Program, NativeVec);
    if (!NativeVec.matches(TapeVec,
                           static_cast<unsigned>(C.R.Final.Scalars.size()),
                           static_cast<unsigned>(C.R.Final.Arrays.size()))) {
      std::fprintf(stderr,
                   "FATAL: native engine diverged on vector execution of "
                   "'%s'\n",
                   C.Name.c_str());
      std::exit(1);
    }
  }

  if (Native.counters().NativeFallbacks != 0) {
    std::fprintf(stderr,
                 "FATAL: native lowering of '%s' fell back to the tape: "
                 "%s\n",
                 C.Name.c_str(), Native.nativeDiagnostic().c_str());
    std::exit(1);
  }
}

/// Repetitions scaled to the workload's iteration space so every timing
/// covers at least a few milliseconds of native execution.
unsigned repsFor(const Kernel &K) {
  int64_t Iters = K.totalIterations();
  return Iters <= 1024 ? 400 : Iters <= 16384 ? 80 : 20;
}

double timeScalarNative(const Kernel &K, unsigned Reps) {
  ExecEngine Engine(ExecEngineKind::Native);
  CompiledScalarKernel Compiled = Engine.compileScalar(K);
  Environment Env(K, 1);
  uint64_t Sink = 0;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Sink += Engine.runScalar(Compiled, Env).AluOps;
  auto End = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Sink);
  return std::chrono::duration<double>(End - Start).count() / Reps;
}

double timeVectorNative(const Kernel &K, const PipelineResult &R,
                        unsigned Reps) {
  ExecEngine Engine(ExecEngineKind::Native);
  CompiledVectorKernel Compiled = Engine.compileVector(R.Final, R.Program);
  Environment Env = makeVectorEnv(K, R, 1);
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I != Reps; ++I)
    Engine.runVector(Compiled, Env);
  auto End = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Env.scalarData());
  return std::chrono::duration<double>(End - Start).count() / Reps;
}

void printMeasuredVsPredicted(std::vector<NativeConfig> &Configs) {
  std::printf("Native SIMD wall-clock: host-compiled scalar baseline "
              "(auto-vectorization disabled) vs emitted vector program\n");
  std::printf("(bit-identity vs the flat-tape engine asserted per "
              "workload; predicted = cost-model cycle ratio)\n");
  std::printf("%16s %13s %13s %9s %10s\n", "workload", "scalar(ms)",
              "vector(ms)", "measured", "predicted");
  for (NativeConfig &C : Configs) {
    assertNativeBitIdentity(C);
    if (!C.R.TransformationApplied) {
      std::printf("%16s %13s %13s %9s %9.2fx  (not vectorized)\n",
                  C.Name.c_str(), "-", "-", "-", C.Predicted);
      continue;
    }
    unsigned Reps = repsFor(C.K);
    double Scalar = timeScalarNative(C.K, Reps);
    double Vector = timeVectorNative(C.K, C.R, Reps);
    C.Measured = Vector > 0 ? Scalar / Vector : 0;
    std::printf("%16s %13.4f %13.4f %8.2fx %9.2fx%s\n", C.Name.c_str(),
                1e3 * Scalar, 1e3 * Vector, C.Measured, C.Predicted,
                C.Predicated ? "  (predicated)" : "");
  }
  std::printf("\n");
}

void registerNativeBench(const NativeConfig *C) {
  std::string Scalar = std::string("native/scalar/") + C->Name;
  benchmark::RegisterBenchmark(Scalar.c_str(), [C](benchmark::State &S) {
    ExecEngine Engine(ExecEngineKind::Native);
    CompiledScalarKernel Compiled = Engine.compileScalar(C->K);
    Environment Env(C->K, 1);
    for (auto _ : S) {
      ScalarExecStats Stats = Engine.runScalar(Compiled, Env);
      benchmark::DoNotOptimize(Stats.AluOps);
    }
  });
  if (!C->R.TransformationApplied)
    return;
  std::string Vector = std::string("native/vector/") + C->Name;
  benchmark::RegisterBenchmark(Vector.c_str(), [C](benchmark::State &S) {
    ExecEngine Engine(ExecEngineKind::Native);
    CompiledVectorKernel Compiled =
        Engine.compileVector(C->R.Final, C->R.Program);
    Environment Env = makeVectorEnv(C->K, C->R, 1);
    for (auto _ : S) {
      Engine.runVector(Compiled, Env);
      benchmark::DoNotOptimize(Env.scalarData());
    }
    // The table's one-shot measurement, exported so the JSON artifact
    // (and the min-ratio CI gate) carries the speedups per workload.
    S.counters["measured_speedup"] = C->Measured;
    S.counters["predicted_speedup"] = C->Predicted;
  });
}

} // namespace

int main(int argc, char **argv) {
  std::string Why;
  if (!nativeBackendAvailable(&Why)) {
    std::printf("bench_native: native backend unavailable (%s); skipping "
                "wall-clock measurement\n",
                Why.c_str());
    return 0;
  }

  std::vector<NativeConfig> Configs = makeConfigs();
  printMeasuredVsPredicted(Configs);

  for (const NativeConfig &C : Configs)
    registerNativeBench(&C);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
