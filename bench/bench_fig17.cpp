//===- bench/bench_fig17.cpp - Figure 17 reproduction -----------*- C++ -*-===//
//
// Figure 17 of the paper: the reductions Global achieves over SLP in
// (a) dynamic instructions executed, excluding packing/unpacking
//     instructions (paper average ~14.5%), and
// (b) packing/unpacking operations (paper average ~43.5%).
// Intel machine.
//
// One reproduction caveat (see EXPERIMENTS.md): our Global vectorizes
// statement families the greedy baseline leaves entirely scalar, so its
// *raw* pack/unpack total can exceed SLP's even though execution time
// improves. The paper's SLP (a production-tuned implementation over
// adjacency-rich SUIF code) rarely left statements scalar, so its Figure
// 17 compares like for like. We therefore also report packing work
// normalized per superword statement, which isolates the reuse effect the
// figure is about.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace slp;
using namespace slp::bench;

static unsigned vectorizedStatementCount(const Schedule &S) {
  unsigned N = 0;
  for (const ScheduleItem &I : S.Items)
    if (I.isGroup())
      N += I.width();
  return N;
}

static void printFigure17() {
  std::printf("Figure 17: reductions of Global over SLP (Intel machine)\n");
  std::printf("%-11s %16s %16s %12s\n", "benchmark", "dynamic instrs",
              "pack/unpack ops", "comparable?");

  double SumInstr = 0, SumPack = 0, SumComparable = 0;
  unsigned PackRows = 0, ComparableRows = 0;
  std::vector<Workload> Suite = standardWorkloads();
  for (const Workload &W : Suite) {
    SchemeResults R = runAllSchemes(W, MachineModel::intelDunnington());
    double InstrRed =
        1.0 - static_cast<double>(R.Global.VectorSim.CoreInstrs) /
                  static_cast<double>(R.Slp.VectorSim.CoreInstrs);
    SumInstr += InstrRed;

    // "Comparable" rows vectorize the same number of statements under both
    // schemes, so the pack/unpack delta isolates the superword-reuse
    // effect Figure 17 is about (rather than Global's wider coverage).
    bool Comparable =
        vectorizedStatementCount(R.Slp.TheSchedule) ==
            vectorizedStatementCount(R.Global.TheSchedule) &&
        R.Slp.VectorSim.PackUnpackInstrs > 0;

    std::string PackCol = "n/a";
    if (R.Slp.VectorSim.PackUnpackInstrs > 0) {
      double PackRed =
          1.0 - static_cast<double>(R.Global.VectorSim.PackUnpackInstrs) /
                    static_cast<double>(R.Slp.VectorSim.PackUnpackInstrs);
      SumPack += PackRed;
      ++PackRows;
      if (Comparable) {
        SumComparable += PackRed;
        ++ComparableRows;
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2f%%", 100.0 * PackRed);
      PackCol = Buf;
    }
    std::printf("%-11s %15.2f%% %16s %12s\n", W.Name.c_str(),
                100.0 * InstrRed, PackCol.c_str(),
                Comparable ? "yes" : "");
  }
  std::printf("%-11s %15.2f%% %15.2f%%\n", "average",
              100.0 * SumInstr / Suite.size(),
              PackRows ? 100.0 * SumPack / PackRows : 0.0);
  std::printf("%-11s %16s %15.2f%%  (over %u comparable rows)\n",
              "comparable", "",
              ComparableRows ? 100.0 * SumComparable / ComparableRows : 0.0,
              ComparableRows);
  std::printf("(paper: ~14.5%% dynamic-instruction and ~43.5%% "
              "packing/unpacking reduction on average; negative raw rows\n"
              " are where Global vectorizes statements the greedy baseline "
              "leaves scalar — see EXPERIMENTS.md)\n\n");
}

int main(int argc, char **argv) {
  printFigure17();
  registerOptimizerTimer("fig17/global/milc", "milc", OptimizerKind::Global,
                         MachineModel::intelDunnington());
  registerOptimizerTimer("fig17/slp/milc", "milc", OptimizerKind::LarsenSlp,
                         MachineModel::intelDunnington());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
